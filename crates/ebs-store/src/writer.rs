//! Chunked store writer: frames column-encoded payloads with a kind tag,
//! a length, and a frame seal ([`crate::seal::seal32`] in format v2), and
//! terminates the file with an END chunk that pins the chunk count and
//! event total.
//!
//! The writer is generic over [`std::io::Write`] so callers pick the
//! buffering policy; `Dataset::save` wraps a `BufWriter` around the file.

use std::io::Write;

use ebs_core::error::EbsError;
use ebs_core::io::IoEvent;
use ebs_core::metric::Series;
use ebs_core::time::TickSpec;

use crate::bytes::ByteWriter;
use crate::columns::{
    encode_events_v2, encode_series_set, encode_specs, EventColumnBytes, EventScratch, SpecRow,
};
use crate::format::{kind, MAGIC, MAX_CHUNK_EVENTS, MAX_CHUNK_LEN, VERSION};
use crate::seal::seal32;

/// Writes an ebs-store container to any [`Write`] sink.
///
/// Construction emits the file header; [`finish`](Self::finish) must be
/// called to seal the file — a store without an END chunk reads back as
/// truncated by design.
#[derive(Debug)]
pub struct StoreWriter<W: Write> {
    out: W,
    chunks_written: u64,
    events_written: u64,
    bytes_written: u64,
    scratch: EventScratch,
    column_bytes: EventColumnBytes,
}

impl<W: Write> StoreWriter<W> {
    /// Start a new store on `out`, writing the magic and version header.
    pub fn new(mut out: W) -> Result<Self, EbsError> {
        out.write_all(&MAGIC)?;
        out.write_all(&VERSION.to_le_bytes())?;
        Ok(Self {
            out,
            chunks_written: 0,
            events_written: 0,
            bytes_written: (MAGIC.len() + 4) as u64,
            scratch: EventScratch::new(),
            column_bytes: EventColumnBytes::default(),
        })
    }

    /// Number of chunks framed so far (END excluded until `finish`).
    pub fn chunks_written(&self) -> u64 {
        self.chunks_written
    }

    /// Total events written across all event chunks so far.
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    /// Per-column byte accounting summed across every EVENTS chunk written
    /// so far (payload bytes only; frames are 9 bytes per chunk).
    pub fn column_bytes(&self) -> EventColumnBytes {
        self.column_bytes
    }

    /// Frame `payload` as a chunk of `chunk_kind`: tag, length, the v2
    /// frame seal of the payload, then the payload itself.
    pub fn write_chunk(&mut self, chunk_kind: u8, payload: &[u8]) -> Result<(), EbsError> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_CHUNK_LEN)
            .ok_or_else(|| {
                EbsError::invalid_spec(format!(
                    "chunk payload of {} bytes exceeds the {MAX_CHUNK_LEN}-byte frame limit",
                    payload.len()
                ))
            })?;
        self.out.write_all(&[chunk_kind])?;
        self.out.write_all(&len.to_le_bytes())?;
        self.out.write_all(&seal32(payload).to_le_bytes())?;
        self.out.write_all(payload)?;
        self.chunks_written += 1;
        self.bytes_written += (crate::format::FRAME_LEN + payload.len()) as u64;
        Ok(())
    }

    /// Write one EVENTS chunk holding all of `events` (at most
    /// [`MAX_CHUNK_EVENTS`]; callers with more use
    /// [`write_events_chunked`](Self::write_events_chunked)).
    pub fn write_events(&mut self, events: &[IoEvent]) -> Result<(), EbsError> {
        let (payload, acct) = encode_events_v2(events, &mut self.scratch)?;
        self.write_chunk(kind::EVENTS, &payload)?;
        self.column_bytes.merge(&acct);
        self.events_written += events.len() as u64;
        Ok(())
    }

    /// Write `events` split into chunks of at most `per_chunk` events
    /// (callers normally pass [`crate::format::EVENTS_PER_CHUNK`]); an
    /// empty slice still
    /// produces one empty chunk so the dataset shape is explicit on disk.
    pub fn write_events_chunked(
        &mut self,
        events: &[IoEvent],
        per_chunk: usize,
    ) -> Result<(), EbsError> {
        let per_chunk = per_chunk.clamp(1, MAX_CHUNK_EVENTS);
        if events.is_empty() {
            return self.write_events(events);
        }
        for chunk in events.chunks(per_chunk) {
            self.write_events(chunk)?;
        }
        Ok(())
    }

    /// Write the SPECS chunk (one row per virtual disk).
    pub fn write_specs(&mut self, rows: &[SpecRow]) -> Result<(), EbsError> {
        let payload = encode_specs(rows);
        self.write_chunk(kind::SPECS, &payload)
    }

    /// Write a metric-series chunk (`COMPUTE_METRICS` or `STORAGE_METRICS`).
    pub fn write_series(
        &mut self,
        chunk_kind: u8,
        ticks: TickSpec,
        series: &[Series],
    ) -> Result<(), EbsError> {
        let payload = encode_series_set(ticks, series);
        self.write_chunk(chunk_kind, &payload)
    }

    /// Write the END chunk (chunk count + event total), flush, and hand the
    /// sink back. Records store counters into the observability registry.
    pub fn finish(mut self) -> Result<W, EbsError> {
        let mut w = ByteWriter::new();
        w.put_varint(self.chunks_written);
        w.put_varint(self.events_written);
        let payload = w.into_bytes();
        self.write_chunk(kind::END, &payload)?;
        self.out.flush()?;
        ebs_obs::counter_add("store.chunks_written", self.chunks_written);
        ebs_obs::counter_add("store.events_written", self.events_written);
        ebs_obs::counter_add("store.bytes_written", self.bytes_written);
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{FRAME_LEN, HEADER_LEN};

    #[test]
    fn header_then_framed_chunks_then_end() {
        let mut w = StoreWriter::new(Vec::new()).unwrap();
        w.write_chunk(kind::CONFIG, b"cfg").unwrap();
        let bytes = w.finish().unwrap();
        assert_eq!(&bytes[..8], b"EBSSTORE");
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            VERSION
        );
        // First chunk frame.
        assert_eq!(bytes[HEADER_LEN], kind::CONFIG);
        let len = u32::from_le_bytes(bytes[HEADER_LEN + 1..HEADER_LEN + 5].try_into().unwrap());
        assert_eq!(len, 3);
        let crc = u32::from_le_bytes(bytes[HEADER_LEN + 5..HEADER_LEN + 9].try_into().unwrap());
        assert_eq!(crc, seal32(b"cfg"));
        // END chunk follows directly.
        let end_at = HEADER_LEN + FRAME_LEN + 3;
        assert_eq!(bytes[end_at], kind::END);
    }

    #[test]
    fn chunked_event_writes_split_and_count() {
        let events: Vec<IoEvent> = (0..10)
            .map(|i| IoEvent {
                t_us: i as u64,
                vd: ebs_core::ids::VdId(0),
                qp: ebs_core::ids::QpId(0),
                op: ebs_core::io::Op::Read,
                size: 4096,
                offset: 0,
            })
            .collect();
        let mut w = StoreWriter::new(Vec::new()).unwrap();
        w.write_events_chunked(&events, 4).unwrap();
        assert_eq!(w.chunks_written(), 3); // 4 + 4 + 2
        assert_eq!(w.events_written(), 10);
        w.finish().unwrap();
    }

    #[test]
    fn empty_event_set_still_gets_a_chunk() {
        let mut w = StoreWriter::new(Vec::new()).unwrap();
        w.write_events_chunked(&[], 1024).unwrap();
        assert_eq!(w.chunks_written(), 1);
        assert_eq!(w.events_written(), 0);
    }
}
