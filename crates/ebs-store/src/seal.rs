//! Frame seal for format-v2 chunks: a 32-bit digest built on the
//! xxHash64 mixing schedule, computable at memory bandwidth in safe Rust.
//!
//! v1 frames are sealed with [`crate::crc32`], which tops out at the
//! load-port bound of its table lookups (~1.2 bytes/cycle on the slicing
//! path) and was the single largest cost of v2 batched decode — the
//! column kernels decode payload bytes faster than a table-driven CRC can
//! verify them. v2 frames instead use four independent multiply-rotate
//! lanes over 32-byte blocks (xxHash64's round function and avalanche,
//! truncated to 32 bits by folding the halves), which verifies several
//! times faster with the same practical corruption detection: any single
//! flipped bit avalanches through an odd-constant multiply, and the
//! failure-injection suite exercises flips in every frame region.
//!
//! The digest is *not* cryptographic and has no burst-error guarantees —
//! it guards against storage corruption, same as the CRC it replaces, not
//! adversaries.

const P1: u64 = 0x9E37_79B1_85EB_CA87;
const P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const P3: u64 = 0x1656_67B1_9E37_79F9;
const P4: u64 = 0x85EB_CA77_C2B2_AE63;
const P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline]
fn merge_round(acc: u64, lane: u64) -> u64 {
    (acc ^ round(0, lane)).wrapping_mul(P1).wrapping_add(P4)
}

/// xxHash64 (seed 0) of `bytes`.
fn hash64(bytes: &[u8]) -> u64 {
    let (blocks, tail) = bytes.as_chunks::<32>();
    let mut h = if blocks.is_empty() {
        P5
    } else {
        let mut acc1 = P1.wrapping_add(P2);
        let mut acc2 = P2;
        let mut acc3 = 0u64;
        let mut acc4 = 0u64.wrapping_sub(P1);
        for b in blocks {
            // A 32-byte block is exactly four 8-byte words, so the slice
            // pattern always matches; `else` keeps the binding panic-free.
            let (words, _) = b.as_chunks::<8>();
            let [w1, w2, w3, w4] = words else { continue };
            acc1 = round(acc1, u64::from_le_bytes(*w1));
            acc2 = round(acc2, u64::from_le_bytes(*w2));
            acc3 = round(acc3, u64::from_le_bytes(*w3));
            acc4 = round(acc4, u64::from_le_bytes(*w4));
        }
        let mut h = acc1
            .rotate_left(1)
            .wrapping_add(acc2.rotate_left(7))
            .wrapping_add(acc3.rotate_left(12))
            .wrapping_add(acc4.rotate_left(18));
        h = merge_round(h, acc1);
        h = merge_round(h, acc2);
        h = merge_round(h, acc3);
        merge_round(h, acc4)
    };
    h = h.wrapping_add(bytes.len() as u64);
    let (words, rest) = tail.as_chunks::<8>();
    for w in words {
        h = (h ^ round(0, u64::from_le_bytes(*w)))
            .rotate_left(27)
            .wrapping_mul(P1)
            .wrapping_add(P4);
    }
    let (half, rest) = rest.as_chunks::<4>();
    for w in half {
        h = (h ^ u64::from(u32::from_le_bytes(*w)).wrapping_mul(P1))
            .rotate_left(23)
            .wrapping_mul(P2)
            .wrapping_add(P3);
    }
    for &b in rest {
        h = (h ^ u64::from(b).wrapping_mul(P5))
            .rotate_left(11)
            .wrapping_mul(P1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^ (h >> 32)
}

/// The 32-bit frame seal of a v2 chunk payload: xxHash64 folded to the
/// width of the frame's checksum field.
pub fn seal32(bytes: &[u8]) -> u32 {
    let h = hash64(bytes);
    (h ^ (h >> 32)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_xxh64_vectors() {
        // Published xxHash64 seed-0 test vectors; pins the mixing schedule
        // to the reference implementation, not just to itself.
        assert_eq!(hash64(b""), 0xEF46_DB37_51D8_E999);
        assert_eq!(hash64(b"a"), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(hash64(b"abc"), 0x44BC_2CF5_AD77_0999);
        assert_eq!(
            hash64(b"Nobody inspects the spammish repetition"),
            0xFBCE_A83C_8A37_8BF1
        );
    }

    #[test]
    fn seal_is_stable_across_lengths() {
        // The seal is a format constant: these values are part of the v2
        // wire format and must never change.
        let data: Vec<u8> = (0..255u8).collect();
        assert_eq!(seal32(&[]), 0xBE9E_32AE);
        assert_eq!(seal32(&data[..7]), seal32(&data[..7]));
        assert_ne!(seal32(&data[..64]), seal32(&data[..65]));
    }

    #[test]
    fn single_bit_flips_change_the_seal_everywhere() {
        let mut data = vec![0u8; 300];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 37 % 251) as u8;
        }
        let base = seal32(&data);
        for pos in [0, 1, 31, 32, 63, 255, 296, 299] {
            for bit in 0..8 {
                let mut copy = data.clone();
                if let Some(b) = copy.get_mut(pos) {
                    *b ^= 1 << bit;
                }
                assert_ne!(seal32(&copy), base, "flip at byte {pos} bit {bit}");
            }
        }
    }

    #[test]
    fn length_extension_and_block_boundaries_differ() {
        // Same prefix, one extra zero byte: the length term must separate
        // them even though a zero word barely stirs the lanes.
        for len in [0usize, 3, 4, 8, 31, 32, 33, 64, 95, 96] {
            let a = vec![0u8; len];
            let b = vec![0u8; len + 1];
            assert_ne!(seal32(&a), seal32(&b), "len {len}");
        }
    }
}
