//! Column codecs for the three paper datasets.
//!
//! Each payload is column-major: all timestamps, then all VD ids, then all
//! QP ids, … — so same-typed values sit adjacent and the encoders see
//! short, similar integers. Two generations coexist:
//!
//! * **v1** (`*_v1`): per-value LEB128 varints. Kept verbatim so v1
//!   containers keep loading bit-for-bit.
//! * **v2**: the batched [`crate::codec`] columns. Events carry a
//!   per-chunk VD dictionary, a per-VD zigzag offset-delta column, and
//!   five tagged group-varint / frame-of-reference columns; metric series
//!   store integral-valued `f64` columns as packed integers instead of raw
//!   bits. Decode lands in a reusable [`EventScratch`] so the steady-state
//!   streaming path allocates nothing per chunk.
//!
//! Floats always travel bit-exactly (raw IEEE-754 bits, or integers whose
//! `f64` round-trip is exact); a save→load→save cycle is byte-identical.
//! The version dispatchers ([`decode_events`], [`decode_series_set`])
//! accept v1 and v2 and return [`EbsError::VersionSkew`] for anything
//! newer.

use crate::bytes::{ByteReader, ByteWriter};
use crate::codec::{decode_column_into, encode_column, encoded_column_size, unzigzag, zigzag};
use crate::format::MAX_CHUNK_EVENTS;
use ebs_core::apps::AppClass;
use ebs_core::error::EbsError;
use ebs_core::ids::{QpId, VdId};
use ebs_core::io::{IoEvent, Op};
use ebs_core::metric::{Flow, RwFlow, Series};
use ebs_core::time::TickSpec;

/// One row of the specification dataset: the per-VD subscription facts the
/// paper's Table 1 lists, flattened for storage. `ebs-workload` maps these
/// to/from its `Fleet`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpecRow {
    /// Owning VM (dense id).
    pub vm: u32,
    /// Inferred application class of the owning VM.
    pub app: AppClass,
    /// VD capacity in bytes.
    pub capacity_bytes: u64,
    /// Queue pairs of the VD.
    pub qp_count: u8,
    /// Throughput cap (bytes/s).
    pub tput_cap: f64,
    /// IOPS cap.
    pub iops_cap: f64,
}

/// Encode a time-sorted batch of events in the legacy v1 layout
/// (per-value varint columns). Returns [`EbsError::InvalidSpec`] if the
/// batch is not sorted by `t_us`.
pub fn encode_events_v1(events: &[IoEvent]) -> Result<Vec<u8>, EbsError> {
    let mut w = ByteWriter::new();
    w.put_varint(events.len() as u64);
    let mut prev = 0u64;
    for e in events {
        if e.t_us < prev {
            return Err(EbsError::invalid_spec(format!(
                "event batch not time-sorted: {} after {prev}",
                e.t_us
            )));
        }
        w.put_varint(e.t_us - prev);
        prev = e.t_us;
    }
    for e in events {
        w.put_varint(e.vd.0 as u64);
    }
    for e in events {
        w.put_varint(e.qp.0 as u64);
    }
    // Op column: one bit per event, 1 = write. Packing by chunks of 8
    // keeps every access in bounds without index arithmetic.
    let mut bits = Vec::with_capacity(events.len().div_ceil(8));
    for group in events.chunks(8) {
        let mut byte = 0u8;
        for (bit, e) in group.iter().enumerate() {
            if e.op.is_write() {
                byte |= 1 << bit;
            }
        }
        bits.push(byte);
    }
    w.put_bytes(&bits);
    for e in events {
        w.put_varint(e.size as u64);
    }
    for e in events {
        w.put_varint(e.offset);
    }
    Ok(w.into_bytes())
}

/// Decode one v1 event batch. Timestamps come back non-decreasing by
/// construction (deltas are unsigned); ids and sizes are range-checked
/// against their column types, not against any fleet — the loader layers
/// fleet validation on top.
pub fn decode_events_v1(payload: &[u8]) -> Result<Vec<IoEvent>, EbsError> {
    let mut r = ByteReader::new(payload, "events chunk");
    let declared = r.get_varint()?;
    let count = r.check_count(declared, 5)?;
    // Build the event vector once and fill the remaining columns in place:
    // one allocation total, no per-column temporaries.
    let mut events = Vec::with_capacity(count);
    let mut prev = 0u64;
    for _ in 0..count {
        let delta = r.get_varint()?;
        prev = prev.checked_add(delta).ok_or_else(|| {
            EbsError::corrupt_store("events chunk: timestamp overflows u64".to_string())
        })?;
        events.push(IoEvent {
            t_us: prev,
            vd: VdId(0),
            qp: QpId(0),
            op: Op::Read,
            size: 0,
            offset: 0,
        });
    }
    for e in events.iter_mut() {
        e.vd = VdId(r.get_varint_u32()?);
    }
    for e in events.iter_mut() {
        e.qp = QpId(r.get_varint_u32()?);
    }
    let bits = r.get_bytes(count.div_ceil(8))?;
    // `chunks_mut(8).zip(bits)` pairs each event group with its op byte;
    // the zip bound makes the lockstep structural instead of indexed.
    for (group, &byte) in events.chunks_mut(8).zip(bits) {
        for (bit, e) in group.iter_mut().enumerate() {
            if byte >> bit & 1 == 1 {
                e.op = Op::Write;
            }
        }
    }
    for e in events.iter_mut() {
        e.size = r.get_varint_u32()?;
    }
    for e in events.iter_mut() {
        e.offset = r.get_varint()?;
    }
    r.expect_end()?;
    Ok(events)
}

/// Bytes of a v2 EVENTS payload broken down by column — the accounting
/// `bench --mode store` and `bin/all --trace` report so a compression
/// regression points at a column instead of an opaque ratio.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventColumnBytes {
    /// Count varint + VD dictionary + op bitset.
    pub header: u64,
    /// Timestamp-delta column.
    pub timestamps: u64,
    /// VD dictionary-index column.
    pub vd: u64,
    /// QP id column.
    pub qp: u64,
    /// Request-size column.
    pub size: u64,
    /// Per-VD zigzag offset-delta column (the LBA column).
    pub offset: u64,
}

impl EventColumnBytes {
    /// Sum of all per-column byte counts.
    pub fn total(&self) -> u64 {
        self.header + self.timestamps + self.vd + self.qp + self.size + self.offset
    }

    /// Accumulate another chunk's accounting into this one.
    pub fn merge(&mut self, other: &EventColumnBytes) {
        self.header += other.header;
        self.timestamps += other.timestamps;
        self.vd += other.vd;
        self.qp += other.qp;
        self.size += other.size;
        self.offset += other.offset;
    }
}

/// Reusable decode target for v2 event chunks. Holding one of these
/// across a streaming pass means steady-state decode does zero allocation
/// per chunk — every column vector is cleared and refilled in place.
#[derive(Debug, Default)]
pub struct EventScratch {
    dict: Vec<u32>,
    t_us: Vec<u64>,
    vd_idx: Vec<u64>,
    qp: Vec<u64>,
    write_bits: Vec<u8>,
    size: Vec<u64>,
    offset: Vec<u64>,
    last_offset: Vec<u64>,
}

impl EventScratch {
    /// Fresh scratch with no reserved capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow the decoded columns of the most recent chunk.
    pub fn columns(&self) -> EventColumns<'_> {
        EventColumns {
            dict: &self.dict,
            t_us: &self.t_us,
            vd_idx: &self.vd_idx,
            qp: &self.qp,
            write_bits: &self.write_bits,
            size: &self.size,
            offset: &self.offset,
        }
    }

    fn clear(&mut self) {
        self.dict.clear();
        self.t_us.clear();
        self.vd_idx.clear();
        self.qp.clear();
        self.write_bits.clear();
        self.size.clear();
        self.offset.clear();
    }
}

/// Borrowed view of one decoded chunk's event columns — the unit the
/// column-at-a-time kernels in [`crate::stream`] and `ebs-analysis`
/// operate on.
///
/// Invariants established by [`decode_events_v2_into`] (and required of
/// hand-built views): all five value columns have equal length,
/// `write_bits` holds at least one bit per event, `t_us` is
/// non-decreasing, every `vd_idx` entry indexes `dict`, and `qp`/`size`
/// values fit in `u32`.
#[derive(Clone, Copy, Debug)]
pub struct EventColumns<'a> {
    /// Sorted, distinct VD ids present in the chunk; `vd_idx` points here.
    pub dict: &'a [u32],
    /// Absolute timestamps (µs), non-decreasing.
    pub t_us: &'a [u64],
    /// Per-event index into `dict`.
    pub vd_idx: &'a [u64],
    /// Per-event QP id.
    pub qp: &'a [u64],
    /// One bit per event, LSB-first per byte; 1 = write.
    pub write_bits: &'a [u8],
    /// Per-event request size in bytes.
    pub size: &'a [u64],
    /// Per-event absolute byte offset.
    pub offset: &'a [u64],
}

impl EventColumns<'_> {
    /// Events in the chunk.
    pub fn len(&self) -> usize {
        self.t_us.len()
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.t_us.is_empty()
    }
}

/// Encode a time-sorted batch of events in the v2 layout:
///
/// ```text
/// count | dict_len dict-deltas… | op-bitset | offset-shift
///       | t-delta col | vd-idx col | qp col | size col | offset-delta col
/// ```
///
/// The VD dictionary is the sorted distinct VD ids of the chunk; the
/// offset column stores zigzagged deltas against the previous offset *of
/// the same VD* (hot-spot locality makes those small where raw LBAs are
/// ~30-bit). Offsets are block-aligned, so the trailing zero bits every
/// offset shares (the shift byte) are stripped *before* the delta —
/// zigzag makes negative deltas odd, which would otherwise hide the
/// alignment from the column codec's own shift. Each value column is a
/// tagged [`crate::codec`] column. Returns the payload plus its
/// per-column byte accounting.
pub fn encode_events_v2(
    events: &[IoEvent],
    scratch: &mut EventScratch,
) -> Result<(Vec<u8>, EventColumnBytes), EbsError> {
    if events.len() > MAX_CHUNK_EVENTS {
        return Err(EbsError::invalid_spec(format!(
            "event chunk of {} events exceeds the {MAX_CHUNK_EVENTS}-event limit",
            events.len()
        )));
    }
    let mut w = ByteWriter::new();
    w.put_varint(events.len() as u64);
    let mut bytes = EventColumnBytes::default();
    if events.is_empty() {
        bytes.header = w.len() as u64;
        return Ok((w.into_bytes(), bytes));
    }
    scratch.clear();
    // VD dictionary: sorted distinct ids, stored as first + deltas (≥1).
    scratch.dict.extend(events.iter().map(|e| e.vd.0));
    scratch.dict.sort_unstable();
    scratch.dict.dedup();
    w.put_varint(scratch.dict.len() as u64);
    let mut prev_id = 0u32;
    for (k, &id) in scratch.dict.iter().enumerate() {
        let delta = if k == 0 { id } else { id - prev_id };
        w.put_varint(u64::from(delta));
        prev_id = id;
    }
    // Column scratch fill. The dictionary lookup is a partition point over
    // a sorted vec — the id is guaranteed present, so the index is exact.
    let mut prev_t = 0u64;
    scratch.last_offset.clear();
    scratch.last_offset.resize(scratch.dict.len(), 0);
    let off_or = events.iter().fold(0u64, |acc, e| acc | e.offset);
    let off_shift = if off_or == 0 {
        0
    } else {
        off_or.trailing_zeros()
    };
    for e in events {
        if e.t_us < prev_t {
            return Err(EbsError::invalid_spec(format!(
                "event batch not time-sorted: {} after {prev_t}",
                e.t_us
            )));
        }
        scratch.t_us.push(e.t_us - prev_t);
        prev_t = e.t_us;
        let idx = scratch.dict.partition_point(|&d| d < e.vd.0);
        scratch.vd_idx.push(idx as u64);
        scratch.qp.push(u64::from(e.qp.0));
        scratch.size.push(u64::from(e.size));
        // Wrapping delta arithmetic round-trips every u64 bit pattern; the
        // decoder mirrors it with a wrapping add.
        let slot = scratch.last_offset.get_mut(idx).ok_or_else(|| {
            EbsError::invalid_spec("event VD missing from its own dictionary".to_string())
        })?;
        let off = e.offset >> off_shift;
        scratch.offset.push(zigzag(off.wrapping_sub(*slot) as i64));
        *slot = off;
    }
    for group in events.chunks(8) {
        let mut byte = 0u8;
        for (bit, e) in group.iter().enumerate() {
            if e.op.is_write() {
                byte |= 1 << bit;
            }
        }
        w.put_u8(byte);
    }
    w.put_u8(off_shift as u8);
    bytes.header = w.len() as u64;
    bytes.timestamps = encode_column(&mut w, &scratch.t_us);
    bytes.vd = encode_column(&mut w, &scratch.vd_idx);
    bytes.qp = encode_column(&mut w, &scratch.qp);
    bytes.size = encode_column(&mut w, &scratch.size);
    bytes.offset = encode_column(&mut w, &scratch.offset);
    Ok((w.into_bytes(), bytes))
}

/// Decode one v2 event chunk into `scratch`, returning the per-column
/// byte accounting. On success the scratch columns satisfy every
/// [`EventColumns`] invariant: timestamps are prefix-summed (overflow is
/// corruption), offsets are reconstructed per VD, `vd_idx` is
/// dictionary-checked, and `qp`/`size` fit in `u32`.
pub fn decode_events_v2_into(
    payload: &[u8],
    scratch: &mut EventScratch,
) -> Result<EventColumnBytes, EbsError> {
    let mut r = ByteReader::new(payload, "events chunk");
    let declared = r.get_varint()?;
    let count = usize::try_from(declared)
        .ok()
        .filter(|&c| c <= MAX_CHUNK_EVENTS)
        .ok_or_else(|| {
            EbsError::corrupt_store(format!(
                "events chunk declares {declared} events, over the {MAX_CHUNK_EVENTS} limit"
            ))
        })?;
    scratch.clear();
    let mut bytes = EventColumnBytes::default();
    if count == 0 {
        r.expect_end()?;
        bytes.header = payload.len() as u64;
        return Ok(bytes);
    }
    let declared_dict = r.get_varint()?;
    let dict_len = r.check_count(declared_dict, 1)?;
    if dict_len == 0 || dict_len > count {
        return Err(EbsError::corrupt_store(format!(
            "events chunk: dictionary of {dict_len} VDs for {count} events"
        )));
    }
    scratch.dict.reserve(dict_len);
    let mut prev_id = 0u64;
    for k in 0..dict_len {
        let delta = r.get_varint()?;
        if k > 0 && delta == 0 {
            return Err(EbsError::corrupt_store(
                "events chunk: VD dictionary not strictly increasing".to_string(),
            ));
        }
        let id = prev_id
            .checked_add(delta)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| {
                EbsError::corrupt_store("events chunk: VD dictionary id overflows u32".to_string())
            })?;
        prev_id = u64::from(id);
        scratch.dict.push(id);
    }
    scratch
        .write_bits
        .extend_from_slice(r.get_bytes(count.div_ceil(8))?);
    let off_shift = u32::from(r.get_u8()?);
    if off_shift >= 64 {
        return Err(EbsError::corrupt_store(format!(
            "events chunk: offset alignment shift {off_shift} is out of range"
        )));
    }
    let header_end = payload.len() - r.remaining();
    bytes.header = header_end as u64;
    bytes.timestamps = decode_column_into(&mut r, count, &mut scratch.t_us)?;
    bytes.vd = decode_column_into(&mut r, count, &mut scratch.vd_idx)?;
    bytes.qp = decode_column_into(&mut r, count, &mut scratch.qp)?;
    bytes.size = decode_column_into(&mut r, count, &mut scratch.size)?;
    bytes.offset = decode_column_into(&mut r, count, &mut scratch.offset)?;
    r.expect_end()?;
    // Timestamps: delta → absolute, overflow is corruption. One
    // vectorizable max-fold proves most chunks can never overflow, which
    // strips the per-value branch from the serial prefix sum; hostile
    // wide deltas take the checked loop instead.
    let max_delta = column_max(&scratch.t_us);
    if max_delta.checked_mul(count as u64).is_some() {
        let mut prev_t = 0u64;
        for t in scratch.t_us.iter_mut() {
            prev_t = prev_t.wrapping_add(*t);
            *t = prev_t;
        }
    } else {
        let mut prev_t = 0u64;
        for t in scratch.t_us.iter_mut() {
            prev_t = prev_t.checked_add(*t).ok_or_else(|| {
                EbsError::corrupt_store("events chunk: timestamp overflows u64".to_string())
            })?;
            *t = prev_t;
        }
    }
    // Offsets: per-VD zigzag delta → absolute, running in the shifted
    // domain and shifting the alignment back in as each value lands. The
    // vd_idx range check happens once, on the column max, so the loop body
    // carries no Result plumbing — its `else` arm is unreachable after the
    // check and exists only to stay panic-free. The OR accumulator
    // enforces shift canonicality: when the shift is nonzero, some
    // shifted-domain offset must be odd, or the encoder would have
    // stripped more bits.
    let max_vx = column_max(&scratch.vd_idx);
    if usize::try_from(max_vx)
        .ok()
        .filter(|&i| i < dict_len)
        .is_none()
    {
        return Err(EbsError::corrupt_store(format!(
            "events chunk: vd index {max_vx} outside the {dict_len}-entry dictionary"
        )));
    }
    scratch.last_offset.clear();
    scratch.last_offset.resize(dict_len, 0);
    let mut off_or = 0u64;
    for (o, &vx) in scratch.offset.iter_mut().zip(scratch.vd_idx.iter()) {
        let Some(slot) = scratch.last_offset.get_mut(vx as usize) else {
            continue;
        };
        let v = slot.wrapping_add(unzigzag(*o) as u64);
        off_or |= v;
        *o = v.wrapping_shl(off_shift);
        *slot = v;
    }
    if off_shift > 0 && off_or & 1 == 0 {
        return Err(EbsError::corrupt_store(format!(
            "events chunk: offset alignment shift {off_shift} is not canonical"
        )));
    }
    // Max-folds instead of `any`: no early exit means the scans vectorize,
    // and honest columns run to the end anyway.
    for (name, col) in [("qp", &scratch.qp), ("size", &scratch.size)] {
        if column_max(col) > u64::from(u32::MAX) {
            return Err(EbsError::corrupt_store(format!(
                "events chunk: {name} column value does not fit in u32"
            )));
        }
    }
    Ok(bytes)
}

/// Column max via eight independent accumulator lanes. A plain
/// `fold(0, max)` carries one serial dependency per value and does not
/// vectorize; the lanes turn it into wide `umax` on the ~1M-value columns
/// the range checks scan.
#[inline]
fn column_max(col: &[u64]) -> u64 {
    let (chunks, rem) = col.as_chunks::<8>();
    let mut acc = [0u64; 8];
    for c in chunks {
        for (a, &v) in acc.iter_mut().zip(c) {
            *a = (*a).max(v);
        }
    }
    let wide = acc.iter().fold(0u64, |a, &v| a.max(v));
    rem.iter().fold(wide, |a, &v| a.max(v))
}

/// Fuse decoded columns back into row-major [`IoEvent`]s, appending to
/// `out`. All lookups are fallible so a hand-built view that violates the
/// [`EventColumns`] invariants yields [`EbsError::CorruptStore`], never a
/// panic.
pub fn events_from_columns(
    cols: &EventColumns<'_>,
    out: &mut Vec<IoEvent>,
) -> Result<(), EbsError> {
    let n = cols.len();
    if cols.vd_idx.len() != n
        || cols.qp.len() != n
        || cols.size.len() != n
        || cols.offset.len() != n
        || cols.write_bits.len() < n.div_ceil(8)
    {
        return Err(EbsError::corrupt_store(
            "event columns have mismatched lengths".to_string(),
        ));
    }
    // Range-check the dictionary indices once up front so the fuse loop
    // below is infallible: its per-row `dict.get` fallback can then never
    // fire, and the whole zip lowers to straight-line extends with no
    // per-row branch to an error path.
    let max_vx = column_max(cols.vd_idx);
    if n > 0
        && usize::try_from(max_vx)
            .ok()
            .filter(|&x| x < cols.dict.len())
            .is_none()
    {
        return Err(EbsError::corrupt_store(format!(
            "vd index {max_vx} outside the chunk dictionary"
        )));
    }
    let rows = cols
        .t_us
        .iter()
        .zip(cols.vd_idx)
        .zip(cols.qp)
        .zip(cols.size)
        .zip(cols.offset);
    out.extend(
        rows.enumerate()
            .map(|(i, ((((&t_us, &vx), &qp), &size), &offset))| {
                let vd = cols.dict.get(vx as usize).copied().unwrap_or(0);
                let bit = cols.write_bits.get(i / 8).map_or(0, |b| b >> (i % 8) & 1);
                IoEvent {
                    t_us,
                    vd: VdId(vd),
                    qp: QpId(qp as u32),
                    op: if bit == 1 { Op::Write } else { Op::Read },
                    size: size as u32,
                    offset,
                }
            }),
    );
    Ok(())
}

/// Encode events in the current format version (v2), with throwaway
/// scratch. Writers on the hot path hold an [`EventScratch`] and call
/// [`encode_events_v2`] directly.
pub fn encode_events(events: &[IoEvent]) -> Result<Vec<u8>, EbsError> {
    let mut scratch = EventScratch::new();
    Ok(encode_events_v2(events, &mut scratch)?.0)
}

/// Decode one event batch of the given container version into row-major
/// events. v1 decodes through the legacy per-value path; v2 through the
/// batched columns; anything newer is [`EbsError::VersionSkew`].
pub fn decode_events(version: u32, payload: &[u8]) -> Result<Vec<IoEvent>, EbsError> {
    match version {
        1 => decode_events_v1(payload),
        2 => {
            let mut scratch = EventScratch::new();
            decode_events_v2_into(payload, &mut scratch)?;
            let mut out = Vec::new();
            events_from_columns(&scratch.columns(), &mut out)?;
            Ok(out)
        }
        other => Err(EbsError::version_skew(format!(
            "no event decoder for container version {other}"
        ))),
    }
}

/// Encode the specification dataset (one row per VD, VD-id order).
/// The layout is identical in v1 and v2.
pub fn encode_specs(rows: &[SpecRow]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_varint(rows.len() as u64);
    for row in rows {
        w.put_varint(row.vm as u64);
        w.put_u8(row.app.index() as u8);
        w.put_varint(row.capacity_bytes);
        w.put_u8(row.qp_count);
        w.put_f64_bits(row.tput_cap);
        w.put_f64_bits(row.iops_cap);
    }
    w.into_bytes()
}

/// Decode the specification dataset.
pub fn decode_specs(payload: &[u8]) -> Result<Vec<SpecRow>, EbsError> {
    let mut r = ByteReader::new(payload, "specs chunk");
    let declared = r.get_varint()?;
    let count = r.check_count(declared, 20)?;
    let mut rows = Vec::with_capacity(count);
    for i in 0..count {
        let vm = r.get_varint_u32()?;
        let app_idx = r.get_u8()?;
        let app = AppClass::from_index(app_idx as usize).ok_or_else(|| {
            EbsError::corrupt_store(format!(
                "specs chunk: row {i} has unknown app class {app_idx}"
            ))
        })?;
        rows.push(SpecRow {
            vm,
            app,
            capacity_bytes: r.get_varint()?,
            qp_count: r.get_u8()?,
            tput_cap: r.get_f64_bits()?,
            iops_cap: r.get_f64_bits()?,
        });
    }
    r.expect_end()?;
    Ok(rows)
}

/// Encode one metric domain in the legacy v1 layout: tick grid, then per
/// series the tick deltas and four raw-bit `f64`s per sample.
pub fn encode_series_set_v1(ticks: TickSpec, series: &[Series]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_f64_bits(ticks.tick_secs);
    w.put_varint(ticks.ticks as u64);
    w.put_varint(series.len() as u64);
    for s in series {
        w.put_varint(s.samples().len() as u64);
        let mut prev = 0u32;
        for sample in s.samples() {
            w.put_varint((sample.tick - prev) as u64);
            prev = sample.tick;
            w.put_f64_bits(sample.rw.read.bytes);
            w.put_f64_bits(sample.rw.read.ops);
            w.put_f64_bits(sample.rw.write.bytes);
            w.put_f64_bits(sample.rw.write.ops);
        }
    }
    w.into_bytes()
}

/// Decode one v1 metric domain back into a tick grid and per-entity series.
pub fn decode_series_set_v1(
    payload: &[u8],
    domain: &str,
) -> Result<(TickSpec, Vec<Series>), EbsError> {
    let mut r = ByteReader::new(payload, "metric chunk");
    let (spec, entities) = decode_series_header(&mut r, domain)?;
    let mut out = Vec::with_capacity(entities);
    for entity in 0..entities {
        let declared_samples = r.get_varint()?;
        let samples = r.check_count(declared_samples, 33)?;
        let mut series = Series::new();
        let mut tick = 0u32;
        for k in 0..samples {
            let delta = r.get_varint_u32()?;
            tick = next_tick(tick, delta, k, entity, domain)?;
            let rw = RwFlow {
                read: Flow {
                    bytes: r.get_f64_bits()?,
                    ops: r.get_f64_bits()?,
                },
                write: Flow {
                    bytes: r.get_f64_bits()?,
                    ops: r.get_f64_bits()?,
                },
            };
            // `Series::push` requires non-decreasing ticks, which the
            // delta decoding guarantees; it drops all-zero flows, which
            // a well-formed store never contains.
            series.push(tick, rw);
        }
        out.push(series);
    }
    r.expect_end()?;
    Ok((spec, out))
}

/// Value-column mode tags of the v2 series layout.
mod series_mode {
    /// Raw IEEE-754 bits, 8 bytes per sample (the v1 representation).
    pub const RAW_BITS: u8 = 0;
    /// Integer-valued samples as a packed [`crate::codec`] column.
    pub const INTEGRAL: u8 = 1;
    /// Zero-dominant samples: an LSB-first presence bitset, then raw
    /// IEEE-754 bits for the nonzero samples only. Roughly half of all
    /// metric samples are exactly `+0.0` (an entity idle on one side of
    /// the read/write split for a whole tick), and the nonzero rates are
    /// full-entropy fractions no integer codec touches — so one bit per
    /// zero is the right spend. `-0.0` has nonzero bits and stays raw.
    pub const SPARSE_BITS: u8 = 2;
}

/// Whether `v` survives an exact `f64 → u64 → f64` round trip. True for
/// every byte/op total the simulator produces (integer-valued, < 2^53);
/// false for fractions, negatives, `-0.0`, NaN, and integers too large to
/// represent — those fall back to raw bits.
#[inline]
fn is_integral(v: f64) -> bool {
    v.to_bits() == ((v as u64) as f64).to_bits()
}

/// Encode one metric domain in the v2 layout. Tick deltas are a packed
/// [`crate::codec`] column; each of the four value columns (read
/// bytes/ops, write bytes/ops) takes whichever of three modes is smallest
/// by exact byte count — integral codec column, zero-bitset sparse, or
/// raw bits (ties prefer that order). The choice is a pure function of
/// the sample values, so a save→load→save cycle is byte-identical. At
/// full scale this roughly halves the metric chunks, which dominate the
/// container (~92% of its bytes).
pub fn encode_series_set_v2(ticks: TickSpec, series: &[Series]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_f64_bits(ticks.tick_secs);
    w.put_varint(ticks.ticks as u64);
    w.put_varint(series.len() as u64);
    let mut col = Vec::new();
    for s in series {
        let samples = s.samples();
        w.put_varint(samples.len() as u64);
        col.clear();
        let mut prev = 0u32;
        for sample in samples {
            col.push(u64::from(sample.tick - prev));
            prev = sample.tick;
        }
        encode_column(&mut w, &col);
        let fields: [fn(&RwFlow) -> f64; 4] = [
            |rw| rw.read.bytes,
            |rw| rw.read.ops,
            |rw| rw.write.bytes,
            |rw| rw.write.ops,
        ];
        for field in fields {
            let nonzero = samples
                .iter()
                .filter(|sm| field(&sm.rw).to_bits() != 0)
                .count();
            let raw_body = 8 * samples.len();
            let sparse_body = samples.len().div_ceil(8) + 8 * nonzero;
            let integral_body = if samples.iter().all(|sm| is_integral(field(&sm.rw))) {
                col.clear();
                col.extend(samples.iter().map(|sm| field(&sm.rw) as u64));
                encoded_column_size(&col)
            } else {
                usize::MAX
            };
            if integral_body <= sparse_body.min(raw_body) {
                w.put_u8(series_mode::INTEGRAL);
                encode_column(&mut w, &col);
            } else if sparse_body < raw_body {
                w.put_u8(series_mode::SPARSE_BITS);
                let mut bits = 0u8;
                for (i, sm) in samples.iter().enumerate() {
                    if field(&sm.rw).to_bits() != 0 {
                        bits |= 1 << (i % 8);
                    }
                    if i % 8 == 7 {
                        w.put_u8(bits);
                        bits = 0;
                    }
                }
                if samples.len() % 8 != 0 {
                    w.put_u8(bits);
                }
                for sm in samples {
                    let v = field(&sm.rw);
                    if v.to_bits() != 0 {
                        w.put_f64_bits(v);
                    }
                }
            } else {
                w.put_u8(series_mode::RAW_BITS);
                for sm in samples {
                    w.put_f64_bits(field(&sm.rw));
                }
            }
        }
    }
    w.into_bytes()
}

/// Decode one v2 metric domain back into a tick grid and per-entity
/// series.
pub fn decode_series_set_v2(
    payload: &[u8],
    domain: &str,
) -> Result<(TickSpec, Vec<Series>), EbsError> {
    let mut r = ByteReader::new(payload, "metric chunk");
    let (spec, entities) = decode_series_header(&mut r, domain)?;
    let mut out = Vec::with_capacity(entities);
    let mut ticks_col = Vec::new();
    let mut values = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for entity in 0..entities {
        let declared_samples = r.get_varint()?;
        let samples = usize::try_from(declared_samples)
            .ok()
            .filter(|&c| c <= MAX_CHUNK_EVENTS)
            .ok_or_else(|| {
                EbsError::corrupt_store(format!(
                    "{domain} metrics: entity {entity} declares {declared_samples} samples"
                ))
            })?;
        decode_column_into(&mut r, samples, &mut ticks_col)?;
        for col in values.iter_mut() {
            col.clear();
            match r.get_u8()? {
                series_mode::RAW_BITS => {
                    col.reserve(samples);
                    for _ in 0..samples {
                        col.push(r.get_f64_bits()?);
                    }
                }
                series_mode::INTEGRAL => {
                    let mut ints = Vec::with_capacity(samples);
                    decode_column_into(&mut r, samples, &mut ints)?;
                    col.extend(ints.iter().map(|&u| u as f64));
                }
                series_mode::SPARSE_BITS => {
                    let bitset = r.get_bytes(samples.div_ceil(8))?;
                    if samples % 8 != 0 {
                        if let Some(&last) = bitset.last() {
                            if last >> (samples % 8) != 0 {
                                return Err(EbsError::corrupt_store(format!(
                                    "{domain} metrics: sparse bitset sets bits past the sample count"
                                )));
                            }
                        }
                    }
                    col.reserve(samples);
                    for i in 0..samples {
                        if bitset.get(i / 8).is_some_and(|&b| b >> (i % 8) & 1 == 1) {
                            let v = r.get_f64_bits()?;
                            if v.to_bits() == 0 {
                                return Err(EbsError::corrupt_store(format!(
                                    "{domain} metrics: sparse column stores an explicit zero"
                                )));
                            }
                            col.push(v);
                        } else {
                            col.push(0.0);
                        }
                    }
                }
                other => {
                    return Err(EbsError::corrupt_store(format!(
                        "{domain} metrics: unknown value-column mode {other}"
                    )))
                }
            }
        }
        let mut series = Series::new();
        let mut tick = 0u32;
        let [rb, ro, wb, wo] = &values;
        let cols = ticks_col.iter().zip(rb).zip(ro).zip(wb).zip(wo);
        for (k, ((((&delta, &read_bytes), &read_ops), &write_bytes), &write_ops)) in
            cols.enumerate()
        {
            let delta = u32::try_from(delta).map_err(|_| {
                EbsError::corrupt_store(format!(
                    "{domain} metrics: entity {entity} tick delta overflows u32"
                ))
            })?;
            tick = next_tick(tick, delta, k, entity, domain)?;
            series.push(
                tick,
                RwFlow {
                    read: Flow {
                        bytes: read_bytes,
                        ops: read_ops,
                    },
                    write: Flow {
                        bytes: write_bytes,
                        ops: write_ops,
                    },
                },
            );
        }
        out.push(series);
    }
    r.expect_end()?;
    Ok((spec, out))
}

/// Shared series-payload header: tick grid plus entity count, validated.
fn decode_series_header(
    r: &mut ByteReader<'_>,
    domain: &str,
) -> Result<(TickSpec, usize), EbsError> {
    let tick_secs = r.get_f64_bits()?;
    let ticks = r.get_varint_u32()?;
    if !(tick_secs.is_finite() && tick_secs > 0.0) || ticks == 0 {
        return Err(EbsError::corrupt_store(format!(
            "{domain} metrics: invalid tick grid ({tick_secs} s x {ticks})"
        )));
    }
    let spec = TickSpec::new(tick_secs, ticks);
    let declared_entities = r.get_varint()?;
    let entities = r.check_count(declared_entities, 1)?;
    Ok((spec, entities))
}

/// Advance the running tick by a decoded delta, rejecting repeats and
/// overflow (shared between the v1 and v2 series decoders).
#[inline]
fn next_tick(
    tick: u32,
    delta: u32,
    k: usize,
    entity: usize,
    domain: &str,
) -> Result<u32, EbsError> {
    if k > 0 && delta == 0 {
        return Err(EbsError::corrupt_store(format!(
            "{domain} metrics: entity {entity} repeats tick {tick}"
        )));
    }
    tick.checked_add(delta).ok_or_else(|| {
        EbsError::corrupt_store(format!(
            "{domain} metrics: entity {entity} tick overflows u32"
        ))
    })
}

/// Encode a metric domain in the current format version (v2).
pub fn encode_series_set(ticks: TickSpec, series: &[Series]) -> Vec<u8> {
    encode_series_set_v2(ticks, series)
}

/// Decode a metric domain of the given container version.
pub fn decode_series_set(
    version: u32,
    payload: &[u8],
    domain: &str,
) -> Result<(TickSpec, Vec<Series>), EbsError> {
    match version {
        1 => decode_series_set_v1(payload, domain),
        2 => decode_series_set_v2(payload, domain),
        other => Err(EbsError::version_skew(format!(
            "no metric decoder for container version {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<IoEvent> {
        (0..1000u64)
            .map(|i| IoEvent {
                t_us: i * 37,
                vd: VdId((i % 7) as u32),
                qp: QpId((i % 13) as u32),
                op: if i % 3 == 0 { Op::Write } else { Op::Read },
                size: 4096 * ((i % 5) as u32 + 1),
                offset: i * 8192 + (i % 11) * (1 << 30),
            })
            .collect()
    }

    #[test]
    fn events_round_trip_in_both_versions() {
        let events = sample_events();
        let v1 = encode_events_v1(&events).unwrap();
        assert_eq!(decode_events(1, &v1).unwrap(), events);
        let v2 = encode_events(&events).unwrap();
        assert_eq!(decode_events(2, &v2).unwrap(), events);
        assert!(matches!(
            decode_events(3, &v2),
            Err(EbsError::VersionSkew(_))
        ));
    }

    #[test]
    fn v2_events_encode_smaller_than_v1() {
        let events = sample_events();
        let v1 = encode_events_v1(&events).unwrap();
        let v2 = encode_events(&events).unwrap();
        assert!(
            v2.len() < v1.len(),
            "v2 {} bytes vs v1 {} bytes",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn v2_column_accounting_sums_to_the_payload() {
        let events = sample_events();
        let mut scratch = EventScratch::new();
        let (payload, enc_bytes) = encode_events_v2(&events, &mut scratch).unwrap();
        assert_eq!(enc_bytes.total(), payload.len() as u64);
        let mut dec = EventScratch::new();
        let dec_bytes = decode_events_v2_into(&payload, &mut dec).unwrap();
        assert_eq!(dec_bytes, enc_bytes);
    }

    #[test]
    fn v2_scratch_reuse_is_equivalent_to_fresh_scratch() {
        let events = sample_events();
        let mut scratch = EventScratch::new();
        for chunk in events.chunks(300) {
            let (payload, _) = encode_events_v2(chunk, &mut scratch).unwrap();
            let mut dec = EventScratch::new();
            decode_events_v2_into(&payload, &mut dec).unwrap();
            let mut out = Vec::new();
            events_from_columns(&dec.columns(), &mut out).unwrap();
            assert_eq!(out, chunk);
        }
        // Re-decode the full batch through one reused scratch as well.
        let mut reused = EventScratch::new();
        let (payload, _) = encode_events_v2(&events, &mut scratch).unwrap();
        decode_events_v2_into(&payload, &mut reused).unwrap();
        decode_events_v2_into(&payload, &mut reused).unwrap();
        let mut out = Vec::new();
        events_from_columns(&reused.columns(), &mut out).unwrap();
        assert_eq!(out, events);
    }

    #[test]
    fn empty_event_batch_round_trips() {
        let payload = encode_events(&[]).unwrap();
        assert!(decode_events(2, &payload).unwrap().is_empty());
        let v1 = encode_events_v1(&[]).unwrap();
        assert!(decode_events(1, &v1).unwrap().is_empty());
    }

    #[test]
    fn unsorted_batch_is_rejected_at_encode_time() {
        let mut events = sample_events();
        events.swap(0, 500);
        assert!(matches!(
            encode_events(&events),
            Err(EbsError::InvalidSpec(_))
        ));
        assert!(matches!(
            encode_events_v1(&events),
            Err(EbsError::InvalidSpec(_))
        ));
    }

    #[test]
    fn event_encoding_is_compact() {
        let events = sample_events();
        let payload = encode_events(&events).unwrap();
        // Struct size is 32 bytes; the column encoding should be well
        // under half of that per event for realistic streams.
        assert!(
            payload.len() < events.len() * 16,
            "{} bytes for {} events",
            payload.len(),
            events.len()
        );
    }

    #[test]
    fn truncated_event_payload_is_typed_not_panic() {
        let events = sample_events();
        for version in [1u32, 2] {
            let payload = match version {
                1 => encode_events_v1(&events).unwrap(),
                _ => encode_events(&events).unwrap(),
            };
            for cut in [0, 1, 2, payload.len() / 2, payload.len() - 1] {
                let err = decode_events(version, &payload[..cut]).unwrap_err();
                assert!(
                    matches!(err, EbsError::Truncated(_) | EbsError::CorruptStore(_)),
                    "v{version} cut at {cut}: {err}"
                );
            }
        }
    }

    #[test]
    fn v2_reencoding_decoded_events_is_byte_identical() {
        let events = sample_events();
        let first = encode_events(&events).unwrap();
        let decoded = decode_events(2, &first).unwrap();
        let second = encode_events(&decoded).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn hostile_v2_headers_are_corruption() {
        let events = sample_events();
        let payload = encode_events(&events).unwrap();
        // Absurd event count.
        let mut w = ByteWriter::new();
        w.put_varint((MAX_CHUNK_EVENTS as u64) + 1);
        let mut scratch = EventScratch::new();
        assert!(matches!(
            decode_events_v2_into(&w.into_bytes(), &mut scratch),
            Err(EbsError::CorruptStore(_))
        ));
        // Dictionary bigger than the event count.
        let mut w = ByteWriter::new();
        w.put_varint(2); // count
        w.put_varint(3); // dict_len > count
        w.put_bytes(&[0; 16]);
        assert!(matches!(
            decode_events_v2_into(&w.into_bytes(), &mut scratch),
            Err(EbsError::CorruptStore(_))
        ));
        // Non-increasing dictionary: flip the second dict delta to zero.
        // (Header layout: count varint, dict_len varint, then deltas.)
        let mut broken = payload;
        // count=1000 is a 2-byte varint; dict_len=7 is 1 byte; first dict
        // delta (id 0) is 1 byte; second delta starts at offset 4.
        broken[4] = 0;
        assert!(matches!(
            decode_events_v2_into(&broken, &mut scratch),
            Err(EbsError::CorruptStore(_))
        ));
    }

    #[test]
    fn hand_built_columns_with_bad_indices_are_rejected() {
        let dict = [3u32];
        let t_us = [0u64, 1];
        let vd_idx = [0u64, 9]; // second entry points past the dictionary
        let qp = [0u64, 0];
        let size = [4096u64, 4096];
        let offset = [0u64, 0];
        let bits = [0u8];
        let cols = EventColumns {
            dict: &dict,
            t_us: &t_us,
            vd_idx: &vd_idx,
            qp: &qp,
            write_bits: &bits,
            size: &size,
            offset: &offset,
        };
        let mut out = Vec::new();
        assert!(matches!(
            events_from_columns(&cols, &mut out),
            Err(EbsError::CorruptStore(_))
        ));
        // Mismatched column lengths are rejected up front.
        let cols = EventColumns {
            dict: &dict,
            t_us: &t_us,
            vd_idx: &vd_idx[..1],
            qp: &qp,
            write_bits: &bits,
            size: &size,
            offset: &offset,
        };
        assert!(matches!(
            events_from_columns(&cols, &mut out),
            Err(EbsError::CorruptStore(_))
        ));
    }

    #[test]
    fn specs_round_trip() {
        let rows = vec![
            SpecRow {
                vm: 3,
                app: AppClass::Database,
                capacity_bytes: 100 << 30,
                qp_count: 4,
                tput_cap: 3.2e8,
                iops_cap: 12_000.0,
            },
            SpecRow {
                vm: 0,
                app: AppClass::Docker,
                capacity_bytes: 40 << 30,
                qp_count: 1,
                tput_cap: 1.0e8,
                iops_cap: 2_400.0,
            },
        ];
        let payload = encode_specs(&rows);
        assert_eq!(decode_specs(&payload).unwrap(), rows);
    }

    #[test]
    fn bad_app_class_is_corruption() {
        let rows = vec![SpecRow {
            vm: 0,
            app: AppClass::BigData,
            capacity_bytes: 1 << 30,
            qp_count: 1,
            tput_cap: 1.0,
            iops_cap: 1.0,
        }];
        let mut payload = encode_specs(&rows);
        payload[2] = 42; // app byte of row 0 (after count varint + vm varint)
        assert!(matches!(
            decode_specs(&payload),
            Err(EbsError::CorruptStore(_))
        ));
    }

    fn sample_series() -> (TickSpec, Vec<Series>) {
        let mut a = Series::new();
        a.push(
            3,
            RwFlow {
                read: Flow {
                    bytes: 1.5e9,
                    ops: 366.0,
                },
                write: Flow::ZERO,
            },
        );
        a.push(
            9,
            RwFlow {
                read: Flow::ZERO,
                write: Flow {
                    bytes: 7.25e8,
                    ops: 177.0,
                },
            },
        );
        (TickSpec::new(10.0, 360), vec![a, Series::new()])
    }

    #[test]
    fn series_sets_round_trip_bit_exactly_in_both_versions() {
        let (ticks, series) = sample_series();
        let v1 = encode_series_set_v1(ticks, &series);
        let (spec, decoded) = decode_series_set(1, &v1, "compute").unwrap();
        assert_eq!(spec, ticks);
        assert_eq!(decoded, series);
        let v2 = encode_series_set(ticks, &series);
        let (spec, decoded) = decode_series_set(2, &v2, "compute").unwrap();
        assert_eq!(spec, ticks);
        assert_eq!(decoded, series);
        assert!(matches!(
            decode_series_set(7, &v2, "compute"),
            Err(EbsError::VersionSkew(_))
        ));
    }

    #[test]
    fn fractional_and_pathological_floats_fall_back_to_raw_bits() {
        let mut s = Series::new();
        s.push(
            1,
            RwFlow {
                read: Flow {
                    bytes: 0.5, // fractional: not integral
                    ops: -0.0,  // sign bit must survive
                },
                write: Flow {
                    bytes: 1e300, // far past 2^53
                    ops: f64::INFINITY,
                },
            },
        );
        let ticks = TickSpec::new(1.0, 4);
        let payload = encode_series_set(ticks, &[s.clone()]);
        let (_, decoded) = decode_series_set(2, &payload, "compute").unwrap();
        let got = decoded.first().and_then(|d| d.samples().first()).unwrap();
        let want = s.samples().first().unwrap();
        assert_eq!(got.rw.read.bytes.to_bits(), want.rw.read.bytes.to_bits());
        assert_eq!(got.rw.read.ops.to_bits(), want.rw.read.ops.to_bits());
        assert_eq!(got.rw.write.bytes.to_bits(), want.rw.write.bytes.to_bits());
        assert_eq!(got.rw.write.ops.to_bits(), want.rw.write.ops.to_bits());
    }

    #[test]
    fn v2_series_encode_integral_values_compactly() {
        // 500 samples of integer-valued flows: v2 should be far smaller
        // than v1's 32 raw bytes per sample.
        let mut s = Series::new();
        for k in 0..500u32 {
            s.push(
                k,
                RwFlow {
                    read: Flow {
                        bytes: f64::from(k) * 4096.0,
                        ops: f64::from(k % 50),
                    },
                    write: Flow {
                        bytes: 4096.0,
                        ops: 1.0,
                    },
                },
            );
        }
        let ticks = TickSpec::new(1.0, 500);
        let v1 = encode_series_set_v1(ticks, &[s.clone()]);
        let v2 = encode_series_set(ticks, &[s]);
        assert!(
            v2.len() * 2 < v1.len(),
            "v2 {} bytes vs v1 {} bytes",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn zero_tick_grid_is_corruption() {
        let payload = encode_series_set(TickSpec::new(1.0, 5), &[]);
        // Flip the tick_secs field to -1.0 bits.
        let mut bad = payload.clone();
        bad[..8].copy_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        assert!(matches!(
            decode_series_set(2, &bad, "compute"),
            Err(EbsError::CorruptStore(_))
        ));
        let mut bad = payload;
        bad[8] = 0; // ticks varint -> 0
        assert!(matches!(
            decode_series_set(2, &bad, "storage"),
            Err(EbsError::CorruptStore(_))
        ));
    }

    #[test]
    fn truncated_series_payloads_are_typed_errors() {
        let (ticks, series) = sample_series();
        let payload = encode_series_set(ticks, &series);
        for cut in [0, 4, 8, 9, payload.len() / 2, payload.len() - 1] {
            let err = decode_series_set(2, &payload[..cut], "compute").unwrap_err();
            assert!(
                matches!(err, EbsError::Truncated(_) | EbsError::CorruptStore(_)),
                "cut at {cut}: {err}"
            );
        }
    }
}
