//! Column codecs for the three paper datasets.
//!
//! Each payload is column-major: all timestamps, then all VD ids, then all
//! QP ids, … — so same-typed values sit adjacent and the varint encoder
//! sees short, similar integers (timestamps become small deltas, ids and
//! sizes repeat). Floats always travel as raw IEEE-754 bits; a
//! save→load→save cycle is byte-identical.

use crate::bytes::{ByteReader, ByteWriter};
use ebs_core::apps::AppClass;
use ebs_core::error::EbsError;
use ebs_core::ids::{QpId, VdId};
use ebs_core::io::{IoEvent, Op};
use ebs_core::metric::{Flow, RwFlow, Series};
use ebs_core::time::TickSpec;

/// One row of the specification dataset: the per-VD subscription facts the
/// paper's Table 1 lists, flattened for storage. `ebs-workload` maps these
/// to/from its `Fleet`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpecRow {
    /// Owning VM (dense id).
    pub vm: u32,
    /// Inferred application class of the owning VM.
    pub app: AppClass,
    /// VD capacity in bytes.
    pub capacity_bytes: u64,
    /// Queue pairs of the VD.
    pub qp_count: u8,
    /// Throughput cap (bytes/s).
    pub tput_cap: f64,
    /// IOPS cap.
    pub iops_cap: f64,
}

/// Encode a time-sorted batch of events, column-major with delta-encoded
/// timestamps. Returns [`EbsError::InvalidSpec`] if the batch is not sorted
/// by `t_us` (the invariant every dataset in the workspace maintains).
pub fn encode_events(events: &[IoEvent]) -> Result<Vec<u8>, EbsError> {
    let mut w = ByteWriter::new();
    w.put_varint(events.len() as u64);
    let mut prev = 0u64;
    for e in events {
        if e.t_us < prev {
            return Err(EbsError::invalid_spec(format!(
                "event batch not time-sorted: {} after {prev}",
                e.t_us
            )));
        }
        w.put_varint(e.t_us - prev);
        prev = e.t_us;
    }
    for e in events {
        w.put_varint(e.vd.0 as u64);
    }
    for e in events {
        w.put_varint(e.qp.0 as u64);
    }
    // Op column: one bit per event, 1 = write. Packing by chunks of 8
    // keeps every access in bounds without index arithmetic.
    let mut bits = Vec::with_capacity(events.len().div_ceil(8));
    for group in events.chunks(8) {
        let mut byte = 0u8;
        for (bit, e) in group.iter().enumerate() {
            if e.op.is_write() {
                byte |= 1 << bit;
            }
        }
        bits.push(byte);
    }
    w.put_bytes(&bits);
    for e in events {
        w.put_varint(e.size as u64);
    }
    for e in events {
        w.put_varint(e.offset);
    }
    Ok(w.into_bytes())
}

/// Decode one event batch. Timestamps come back non-decreasing by
/// construction (deltas are unsigned); ids and sizes are range-checked
/// against their column types, not against any fleet — the loader layers
/// fleet validation on top.
pub fn decode_events(payload: &[u8]) -> Result<Vec<IoEvent>, EbsError> {
    let mut r = ByteReader::new(payload, "events chunk");
    let declared = r_count(&mut r)?;
    let count = r.check_count(declared, 5)?;
    // Build the event vector once and fill the remaining columns in place:
    // one allocation total, no per-column temporaries (this decode is the
    // replay hot path the `bench --mode store` baseline measures).
    let mut events = Vec::with_capacity(count);
    let mut prev = 0u64;
    for _ in 0..count {
        let delta = r.get_varint()?;
        prev = prev.checked_add(delta).ok_or_else(|| {
            EbsError::corrupt_store("events chunk: timestamp overflows u64".to_string())
        })?;
        events.push(IoEvent {
            t_us: prev,
            vd: VdId(0),
            qp: QpId(0),
            op: Op::Read,
            size: 0,
            offset: 0,
        });
    }
    for e in events.iter_mut() {
        e.vd = VdId(r.get_varint_u32()?);
    }
    for e in events.iter_mut() {
        e.qp = QpId(r.get_varint_u32()?);
    }
    let bits = r.get_bytes(count.div_ceil(8))?;
    // `chunks_mut(8).zip(bits)` pairs each event group with its op byte;
    // the zip bound makes the lockstep structural instead of indexed.
    for (group, &byte) in events.chunks_mut(8).zip(bits) {
        for (bit, e) in group.iter_mut().enumerate() {
            if byte >> bit & 1 == 1 {
                e.op = Op::Write;
            }
        }
    }
    for e in events.iter_mut() {
        e.size = r.get_varint_u32()?;
    }
    for e in events.iter_mut() {
        e.offset = r.get_varint()?;
    }
    r.expect_end()?;
    Ok(events)
}

/// Read the leading element count of a payload.
fn r_count(r: &mut ByteReader<'_>) -> Result<u64, EbsError> {
    r.get_varint()
}

/// Encode the specification dataset (one row per VD, VD-id order).
pub fn encode_specs(rows: &[SpecRow]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_varint(rows.len() as u64);
    for row in rows {
        w.put_varint(row.vm as u64);
        w.put_u8(row.app.index() as u8);
        w.put_varint(row.capacity_bytes);
        w.put_u8(row.qp_count);
        w.put_f64_bits(row.tput_cap);
        w.put_f64_bits(row.iops_cap);
    }
    w.into_bytes()
}

/// Decode the specification dataset.
pub fn decode_specs(payload: &[u8]) -> Result<Vec<SpecRow>, EbsError> {
    let mut r = ByteReader::new(payload, "specs chunk");
    let declared = r_count(&mut r)?;
    let count = r.check_count(declared, 20)?;
    let mut rows = Vec::with_capacity(count);
    for i in 0..count {
        let vm = r.get_varint_u32()?;
        let app_idx = r.get_u8()?;
        let app = AppClass::from_index(app_idx as usize).ok_or_else(|| {
            EbsError::corrupt_store(format!(
                "specs chunk: row {i} has unknown app class {app_idx}"
            ))
        })?;
        rows.push(SpecRow {
            vm,
            app,
            capacity_bytes: r.get_varint()?,
            qp_count: r.get_u8()?,
            tput_cap: r.get_f64_bits()?,
            iops_cap: r.get_f64_bits()?,
        });
    }
    r.expect_end()?;
    Ok(rows)
}

/// Encode one metric domain: the tick grid plus one sparse series per
/// entity (QP or segment), entity-id order.
pub fn encode_series_set(ticks: TickSpec, series: &[Series]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_f64_bits(ticks.tick_secs);
    w.put_varint(ticks.ticks as u64);
    w.put_varint(series.len() as u64);
    for s in series {
        w.put_varint(s.samples().len() as u64);
        let mut prev = 0u32;
        for sample in s.samples() {
            w.put_varint((sample.tick - prev) as u64);
            prev = sample.tick;
            w.put_f64_bits(sample.rw.read.bytes);
            w.put_f64_bits(sample.rw.read.ops);
            w.put_f64_bits(sample.rw.write.bytes);
            w.put_f64_bits(sample.rw.write.ops);
        }
    }
    w.into_bytes()
}

/// Decode one metric domain back into a tick grid and per-entity series.
pub fn decode_series_set(
    payload: &[u8],
    domain: &str,
) -> Result<(TickSpec, Vec<Series>), EbsError> {
    let mut r = ByteReader::new(payload, "metric chunk");
    let tick_secs = r.get_f64_bits()?;
    let ticks = r.get_varint_u32()?;
    if !(tick_secs.is_finite() && tick_secs > 0.0) || ticks == 0 {
        return Err(EbsError::corrupt_store(format!(
            "{domain} metrics: invalid tick grid ({tick_secs} s x {ticks})"
        )));
    }
    let spec = TickSpec::new(tick_secs, ticks);
    let declared_entities = r.get_varint()?;
    let entities = r.check_count(declared_entities, 1)?;
    let mut out = Vec::with_capacity(entities);
    for entity in 0..entities {
        let declared_samples = r.get_varint()?;
        let samples = r.check_count(declared_samples, 33)?;
        let mut series = Series::new();
        let mut tick = 0u32;
        for k in 0..samples {
            let delta = r.get_varint_u32()?;
            if k > 0 && delta == 0 {
                return Err(EbsError::corrupt_store(format!(
                    "{domain} metrics: entity {entity} repeats tick {tick}"
                )));
            }
            tick = tick.checked_add(delta).ok_or_else(|| {
                EbsError::corrupt_store(format!(
                    "{domain} metrics: entity {entity} tick overflows u32"
                ))
            })?;
            let rw = RwFlow {
                read: Flow {
                    bytes: r.get_f64_bits()?,
                    ops: r.get_f64_bits()?,
                },
                write: Flow {
                    bytes: r.get_f64_bits()?,
                    ops: r.get_f64_bits()?,
                },
            };
            // `Series::push` requires non-decreasing ticks, which the
            // delta decoding guarantees; it drops all-zero flows, which
            // a well-formed store never contains.
            series.push(tick, rw);
        }
        out.push(series);
    }
    r.expect_end()?;
    Ok((spec, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<IoEvent> {
        (0..1000u64)
            .map(|i| IoEvent {
                t_us: i * 37,
                vd: VdId((i % 7) as u32),
                qp: QpId((i % 13) as u32),
                op: if i % 3 == 0 { Op::Write } else { Op::Read },
                size: 4096 * ((i % 5) as u32 + 1),
                offset: i * 8192 + (i % 11) * (1 << 30),
            })
            .collect()
    }

    #[test]
    fn events_round_trip() {
        let events = sample_events();
        let payload = encode_events(&events).unwrap();
        assert_eq!(decode_events(&payload).unwrap(), events);
    }

    #[test]
    fn empty_event_batch_round_trips() {
        let payload = encode_events(&[]).unwrap();
        assert!(decode_events(&payload).unwrap().is_empty());
    }

    #[test]
    fn unsorted_batch_is_rejected_at_encode_time() {
        let mut events = sample_events();
        events.swap(0, 500);
        assert!(matches!(
            encode_events(&events),
            Err(EbsError::InvalidSpec(_))
        ));
    }

    #[test]
    fn event_encoding_is_compact() {
        let events = sample_events();
        let payload = encode_events(&events).unwrap();
        // Struct size is 32 bytes; the column encoding should be well
        // under half of that per event for realistic streams.
        assert!(
            payload.len() < events.len() * 16,
            "{} bytes for {} events",
            payload.len(),
            events.len()
        );
    }

    #[test]
    fn truncated_event_payload_is_typed_not_panic() {
        let events = sample_events();
        let payload = encode_events(&events).unwrap();
        for cut in [0, 1, 2, payload.len() / 2, payload.len() - 1] {
            let err = decode_events(&payload[..cut]).unwrap_err();
            assert!(
                matches!(err, EbsError::Truncated(_) | EbsError::CorruptStore(_)),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn specs_round_trip() {
        let rows = vec![
            SpecRow {
                vm: 3,
                app: AppClass::Database,
                capacity_bytes: 100 << 30,
                qp_count: 4,
                tput_cap: 3.2e8,
                iops_cap: 12_000.0,
            },
            SpecRow {
                vm: 0,
                app: AppClass::Docker,
                capacity_bytes: 40 << 30,
                qp_count: 1,
                tput_cap: 1.0e8,
                iops_cap: 2_400.0,
            },
        ];
        let payload = encode_specs(&rows);
        assert_eq!(decode_specs(&payload).unwrap(), rows);
    }

    #[test]
    fn bad_app_class_is_corruption() {
        let rows = vec![SpecRow {
            vm: 0,
            app: AppClass::BigData,
            capacity_bytes: 1 << 30,
            qp_count: 1,
            tput_cap: 1.0,
            iops_cap: 1.0,
        }];
        let mut payload = encode_specs(&rows);
        payload[2] = 42; // app byte of row 0 (after count varint + vm varint)
        assert!(matches!(
            decode_specs(&payload),
            Err(EbsError::CorruptStore(_))
        ));
    }

    #[test]
    fn series_sets_round_trip_bit_exactly() {
        let mut a = Series::new();
        a.push(
            3,
            RwFlow {
                read: Flow {
                    bytes: 1.5e9,
                    ops: 366.2,
                },
                write: Flow::ZERO,
            },
        );
        a.push(
            9,
            RwFlow {
                read: Flow::ZERO,
                write: Flow {
                    bytes: 7.25e8,
                    ops: 177.0,
                },
            },
        );
        let b = Series::new();
        let ticks = TickSpec::new(10.0, 360);
        let payload = encode_series_set(ticks, &[a.clone(), b.clone()]);
        let (spec, decoded) = decode_series_set(&payload, "compute").unwrap();
        assert_eq!(spec, ticks);
        assert_eq!(decoded, vec![a, b]);
    }

    #[test]
    fn zero_tick_grid_is_corruption() {
        let payload = encode_series_set(TickSpec::new(1.0, 5), &[]);
        // Flip the tick_secs field to -1.0 bits.
        let mut bad = payload.clone();
        bad[..8].copy_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        assert!(matches!(
            decode_series_set(&bad, "compute"),
            Err(EbsError::CorruptStore(_))
        ));
        let mut bad = payload;
        bad[8] = 0; // ticks varint -> 0
        assert!(matches!(
            decode_series_set(&bad, "storage"),
            Err(EbsError::CorruptStore(_))
        ));
    }
}
