//! On-disk layout constants of the `ebs-store` container (DESIGN.md §12,
//! §14).
//!
//! ```text
//! file   := magic(8) version(u32 LE) chunk* end-chunk
//! chunk  := kind(u8) payload_len(u32 LE) seal(u32 LE) payload
//! ```
//!
//! The frame seal — CRC32 in v1 files, [`crate::seal::seal32`] in v2 —
//! covers exactly the payload bytes. The end chunk carries the
//! number of preceding chunks and the total event count, so a file cut at
//! a chunk boundary — which would otherwise parse cleanly — is still
//! detected as truncated.

/// File magic: identifies an ebs-store container independent of version.
pub const MAGIC: [u8; 8] = *b"EBSSTORE";

/// Current format version. Readers reject anything newer ([version skew])
/// and keep decoding every older version bit-for-bit: v1 payloads are
/// per-value LEB128 columns, v2 payloads are the batched group-varint /
/// frame-of-reference columns of [`crate::codec`] (DESIGN.md §14).
///
/// [version skew]: ebs_core::error::EbsError::VersionSkew
pub const VERSION: u32 = 2;

/// Hard ceiling on the event count a single v2 EVENTS chunk may declare.
/// Writers chunk far below this ([`EVENTS_PER_CHUNK`]); readers treat a
/// bigger declared count as corruption before sizing any scratch column —
/// a v2 chunk of all-constant columns is a few hundred bytes regardless of
/// its count, so the byte-budget check alone cannot bound allocations.
pub const MAX_CHUNK_EVENTS: usize = 1 << 22;

/// Upper bound on a single chunk's payload (writers stay far below; a
/// declared length past this is corruption, not an allocation request).
pub const MAX_CHUNK_LEN: u32 = 256 << 20;

/// Default number of events per chunk written by
/// [`crate::writer::StoreWriter::write_events_chunked`]: large enough to
/// amortize framing and keep the per-chunk dictionary small, small enough
/// that a chunk's five decoded u64 columns (~320 KB) stay L2-resident —
/// the post-decode passes and row fuse re-scan them, and at 64 Ki events
/// per chunk that rescan spills to L3 and costs ~15% of decode throughput.
pub const EVENTS_PER_CHUNK: usize = 8_192;

/// Chunk kind tags. Unknown kinds are skipped by readers (forward-compatible
/// within one version: a v1 reader ignores optional chunks it predates).
pub mod kind {
    /// Opaque generation-config payload (encoded by `ebs-workload`).
    pub const CONFIG: u8 = 1;
    /// Specification data: one row per VD (§2.3 "specification dataset").
    pub const SPECS: u8 = 2;
    /// A column-major batch of sampled IO events (trace dataset).
    pub const EVENTS: u8 = 3;
    /// Compute-domain metric series (per QP).
    pub const COMPUTE_METRICS: u8 = 4;
    /// Storage-domain metric series (per segment).
    pub const STORAGE_METRICS: u8 = 5;
    /// Shard self-description: which contiguous VD range this shard file
    /// owns, and its position in the shard set (DESIGN.md §15).
    pub const SHARD_META: u8 = 6;
    /// Shard-set manifest: fleet dimensions plus one entry per shard file,
    /// stored in its own container alongside the shards (DESIGN.md §15).
    pub const MANIFEST: u8 = 7;
    /// Terminal chunk: chunk count + event total for truncation detection.
    pub const END: u8 = 0xFF;
}

/// Bytes of the fixed file header (magic + version).
pub const HEADER_LEN: usize = MAGIC.len() + 4;

/// Bytes of a chunk frame header (kind + length + seal).
pub const FRAME_LEN: usize = 1 + 4 + 4;
