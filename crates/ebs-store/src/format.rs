//! On-disk layout constants of the `ebs-store` container (DESIGN.md §12).
//!
//! ```text
//! file   := magic(8) version(u32 LE) chunk* end-chunk
//! chunk  := kind(u8) payload_len(u32 LE) crc32(u32 LE) payload
//! ```
//!
//! The CRC covers exactly the payload bytes. The end chunk carries the
//! number of preceding chunks and the total event count, so a file cut at
//! a chunk boundary — which would otherwise parse cleanly — is still
//! detected as truncated.

/// File magic: identifies an ebs-store container independent of version.
pub const MAGIC: [u8; 8] = *b"EBSSTORE";

/// Current format version. Readers reject anything newer ([version skew]);
/// older versions would be migrated here once version 2 exists.
///
/// [version skew]: ebs_core::error::EbsError::VersionSkew
pub const VERSION: u32 = 1;

/// Upper bound on a single chunk's payload (writers stay far below; a
/// declared length past this is corruption, not an allocation request).
pub const MAX_CHUNK_LEN: u32 = 256 << 20;

/// Default number of events per chunk written by
/// [`crate::writer::StoreWriter::write_events_chunked`]: large enough to
/// amortize framing, small enough that streaming readers hold ~2 MB live.
pub const EVENTS_PER_CHUNK: usize = 65_536;

/// Chunk kind tags. Unknown kinds are skipped by readers (forward-compatible
/// within one version: a v1 reader ignores optional chunks it predates).
pub mod kind {
    /// Opaque generation-config payload (encoded by `ebs-workload`).
    pub const CONFIG: u8 = 1;
    /// Specification data: one row per VD (§2.3 "specification dataset").
    pub const SPECS: u8 = 2;
    /// A column-major batch of sampled IO events (trace dataset).
    pub const EVENTS: u8 = 3;
    /// Compute-domain metric series (per QP).
    pub const COMPUTE_METRICS: u8 = 4;
    /// Storage-domain metric series (per segment).
    pub const STORAGE_METRICS: u8 = 5;
    /// Terminal chunk: chunk count + event total for truncation detection.
    pub const END: u8 = 0xFF;
}

/// Bytes of the fixed file header (magic + version).
pub const HEADER_LEN: usize = MAGIC.len() + 4;

/// Bytes of a chunk frame header (kind + length + crc).
pub const FRAME_LEN: usize = 1 + 4 + 4;
