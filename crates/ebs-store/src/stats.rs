//! Store-level byte accounting: one streaming pass over a container that
//! attributes every byte to a chunk kind, and every v2 EVENTS payload byte
//! to its column. This is what `bin/all --trace` prints after a replay and
//! what `bench --mode store` embeds in `BENCH_store.json`, so a
//! compression regression points at a specific column (timestamps, LBA
//! offsets, sizes…) instead of an opaque whole-file ratio.

use std::io::Read;

use ebs_core::error::EbsError;

use crate::columns::{decode_events_v2_into, EventColumnBytes, EventScratch};
use crate::format::{kind, FRAME_LEN, HEADER_LEN};
use crate::reader::ChunkReader;

/// Per-chunk-kind and per-column byte totals for one container.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Format version declared by the file header.
    pub version: u32,
    /// Chunks preceding the END chunk.
    pub chunks: u64,
    /// Events pinned by the END chunk.
    pub events: u64,
    /// Whole-file size: header, frames, payloads, END chunk.
    pub file_bytes: u64,
    /// Frame overhead: file header plus one frame per chunk (END included).
    pub frame_bytes: u64,
    /// CONFIG chunk payload bytes.
    pub config_bytes: u64,
    /// SPECS chunk payload bytes.
    pub specs_bytes: u64,
    /// COMPUTE_METRICS chunk payload bytes.
    pub compute_bytes: u64,
    /// STORAGE_METRICS chunk payload bytes.
    pub storage_bytes: u64,
    /// EVENTS chunk payload bytes (all versions).
    pub events_bytes: u64,
    /// Payload bytes of unknown chunk kinds (skipped by decoders).
    pub other_bytes: u64,
    /// END chunk payload bytes.
    pub end_bytes: u64,
    /// EVENTS payload bytes split by column (zero while scanning a v1
    /// store, whose payloads have no column-addressable layout).
    pub columns: EventColumnBytes,
}

impl StoreStats {
    /// Scan a container from `input`, decoding each v2 EVENTS chunk once
    /// to attribute its payload bytes per column. One payload buffer and
    /// one column scratch are reused, so the scan allocates O(chunk), not
    /// O(file).
    pub fn scan<R: Read>(input: R) -> Result<StoreStats, EbsError> {
        let mut reader = ChunkReader::new(input)?;
        let mut stats = StoreStats {
            version: reader.version(),
            frame_bytes: HEADER_LEN as u64,
            file_bytes: HEADER_LEN as u64,
            ..StoreStats::default()
        };
        let mut payload = Vec::new();
        let mut scratch = EventScratch::new();
        while let Some(chunk_kind) = reader.next_chunk_into(&mut payload)? {
            let len = payload.len() as u64;
            stats.chunks += 1;
            stats.frame_bytes += FRAME_LEN as u64;
            stats.file_bytes += FRAME_LEN as u64 + len;
            match chunk_kind {
                kind::CONFIG => stats.config_bytes += len,
                kind::SPECS => stats.specs_bytes += len,
                kind::COMPUTE_METRICS => stats.compute_bytes += len,
                kind::STORAGE_METRICS => stats.storage_bytes += len,
                kind::EVENTS => {
                    stats.events_bytes += len;
                    if stats.version >= 2 {
                        let acct = decode_events_v2_into(&payload, &mut scratch)?;
                        stats.columns.merge(&acct);
                    }
                }
                _ => stats.other_bytes += len,
            }
        }
        let end = reader
            .end_summary()
            .ok_or_else(|| EbsError::truncated("store has no end chunk".to_string()))?;
        stats.events = end.events;
        // The END chunk is not yielded by the iterator; account for it from
        // the summary frame: its payload is two varints.
        let end_payload = varint_len(end.chunks) + varint_len(end.events);
        stats.end_bytes = end_payload;
        stats.frame_bytes += FRAME_LEN as u64;
        stats.file_bytes += FRAME_LEN as u64 + end_payload;
        Ok(stats)
    }

    /// Render the accounting as aligned text lines (callers decide the
    /// sink; the replay path sends them to stderr).
    pub fn render(&self) -> Vec<String> {
        let col = &self.columns;
        let mut lines = vec![
            format!(
                "store v{}: {} bytes, {} chunks, {} events",
                self.version, self.file_bytes, self.chunks, self.events
            ),
            format!(
                "  chunk bytes: events {} | compute {} | storage {} | specs {} | config {} | frames {}",
                self.events_bytes,
                self.compute_bytes,
                self.storage_bytes,
                self.specs_bytes,
                self.config_bytes,
                self.frame_bytes + self.end_bytes + self.other_bytes
            ),
        ];
        if self.version >= 2 {
            lines.push(format!(
                "  event columns: timestamps {} | lba {} | size {} | qp {} | vd {} | header {}",
                col.timestamps, col.offset, col.size, col.qp, col.vd, col.header
            ));
        }
        lines
    }
}

/// LEB128-encoded size of `v` in bytes.
fn varint_len(v: u64) -> u64 {
    (64 - v.leading_zeros() as u64).max(1).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::StoreWriter;
    use ebs_core::ids::{QpId, VdId};
    use ebs_core::io::{IoEvent, Op};

    fn sample_store() -> (Vec<u8>, EventColumnBytes) {
        let events: Vec<IoEvent> = (0..500)
            .map(|i| IoEvent {
                t_us: i * 3,
                vd: VdId((i % 4) as u32),
                qp: QpId((i % 2) as u32),
                op: if i % 3 == 0 { Op::Write } else { Op::Read },
                size: 4096 << (i % 3),
                offset: i * 4096,
            })
            .collect();
        let mut w = StoreWriter::new(Vec::new()).unwrap();
        w.write_chunk(kind::CONFIG, b"cfg-bytes").unwrap();
        w.write_events_chunked(&events, 128).unwrap();
        let acct = w.column_bytes();
        (w.finish().unwrap(), acct)
    }

    #[test]
    fn scan_accounts_for_every_file_byte() {
        let (bytes, written_columns) = sample_store();
        let stats = StoreStats::scan(bytes.as_slice()).unwrap();
        assert_eq!(stats.version, crate::format::VERSION);
        assert_eq!(stats.events, 500);
        assert_eq!(stats.file_bytes, bytes.len() as u64);
        assert_eq!(stats.config_bytes, 9);
        // Payload accounting is exhaustive: frames + payloads == file.
        let payloads = stats.config_bytes
            + stats.specs_bytes
            + stats.compute_bytes
            + stats.storage_bytes
            + stats.events_bytes
            + stats.other_bytes
            + stats.end_bytes;
        assert_eq!(stats.frame_bytes + payloads, stats.file_bytes);
        // Column accounting is exhaustive over the events payloads and
        // matches what the writer recorded.
        assert_eq!(stats.columns.total(), stats.events_bytes);
        assert_eq!(stats.columns, written_columns);
    }

    #[test]
    fn render_names_every_column() {
        let (bytes, _) = sample_store();
        let stats = StoreStats::scan(bytes.as_slice()).unwrap();
        let text = stats.render().join("\n");
        for needle in ["timestamps", "lba", "size", "qp", "vd", "header"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn truncated_store_reports_typed_error() {
        let (bytes, _) = sample_store();
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(StoreStats::scan(cut), Err(EbsError::Truncated(_))));
    }
}
