//! CRC32 (IEEE 802.3 polynomial, the zlib/gzip variant), implemented
//! in-repo because the build environment is offline — the same reason
//! `ebs_core::hash` carries its own FxHash. Uses the slicing-by-8
//! technique: eight 256-entry tables built once at first use, folding
//! eight input bytes per step, so checksum verification stays well off
//! the critical path of streaming decode.

use std::sync::OnceLock;

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        // t[k][i] extends t[k-1][i] by one zero byte, so the eight tables
        // jointly advance the state across an 8-byte word in one step.
        for k in 1..8 {
            let (done, rest) = t.split_at_mut(k);
            let base = &done[0];
            let prev = done[k - 1];
            for (slot, p) in rest[0].iter_mut().zip(prev) {
                *slot = (p >> 8) ^ base[(p & 0xFF) as usize];
            }
        }
        t
    })
}

/// Incremental CRC32 state.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = tables();
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for w in &mut chunks {
            // `chunks_exact(8)` guarantees both halves are 4 bytes; the
            // default is unreachable and keeps this hot loop panic-free.
            let lo = u32::from_le_bytes(w[..4].try_into().unwrap_or_default()) ^ crc;
            let hi = u32::from_le_bytes(w[4..].try_into().unwrap_or_default());
            crc = t[7][(lo & 0xFF) as usize]
                ^ t[6][(lo >> 8 & 0xFF) as usize]
                ^ t[5][(lo >> 16 & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][(hi >> 8 & 0xFF) as usize]
                ^ t[1][(hi >> 16 & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference byte-at-a-time implementation, kept only to pin the
    /// slicing-by-8 fast path to the classic algorithm.
    fn crc32_bytewise(bytes: &[u8]) -> u32 {
        let t = &tables()[0];
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
        }
        crc ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sliced_path_matches_bytewise_at_every_alignment() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 31 % 251) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"hey hey, my my, skewness is here to stay";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn incremental_split_mid_word_equals_one_shot() {
        let data: Vec<u8> = (0..100u8).collect();
        for split in [1, 3, 8, 13, 64, 99] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(&data), "split {split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 1024];
        data[500] = 0x55;
        let base = crc32(&data);
        data[500] ^= 0x01;
        assert_ne!(crc32(&data), base);
    }
}
