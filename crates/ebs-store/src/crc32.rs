//! CRC32 (IEEE 802.3 polynomial, the zlib/gzip variant), implemented
//! in-repo because the build environment is offline — the same reason
//! `ebs_core::hash` carries its own FxHash. Uses the slicing-by-32
//! technique: thirty-two 256-entry tables built once at first use,
//! folding thirty-two input bytes per step. Only the first four input
//! bytes of each block mix with the running state, so the serial
//! dependency chain is one 32-wide fold per 32 bytes — half the per-byte
//! chain latency of slicing-by-16 — and checksum verification stays well
//! off the critical path of streaming decode: the v2 column kernels
//! decode payload bytes about as fast as the checksum absorbs them.

use std::sync::OnceLock;

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// Bytes folded per slicing step (and tables built for it).
const SLICES: usize = 32;

fn tables() -> &'static [[u32; 256]; SLICES] {
    static TABLES: OnceLock<[[u32; 256]; SLICES]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; SLICES];
        for (i, slot) in t[0].iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        // t[k][i] extends t[k-1][i] by one zero byte, so the thirty-two
        // tables jointly advance the state across a 32-byte block in one
        // step.
        for k in 1..SLICES {
            let (done, rest) = t.split_at_mut(k);
            let base = &done[0];
            let prev = done[k - 1];
            for (slot, p) in rest[0].iter_mut().zip(prev) {
                *slot = (p >> 8) ^ base[(p & 0xFF) as usize];
            }
        }
        t
    })
}

/// Incremental CRC32 state.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        // One table lookup of a masked byte; the mask keeps the index
        // provably in bounds of the 256-entry table, so the bounds check
        // compiles away.
        #[inline]
        fn at(t: &[u32; 256], i: u32) -> u32 {
            // `.get()` here would re-insert the bounds check this helper
            // exists to elide.
            // ebs-lint: allow(D3) -- `i & 0xFF` is provably < 256, the table length
            t[(i & 0xFF) as usize]
        }
        #[rustfmt::skip]
        let [
            t0, t1, t2, t3, t4, t5, t6, t7, t8, t9, t10, t11, t12, t13, t14, t15,
            t16, t17, t18, t19, t20, t21, t22, t23, t24, t25, t26, t27, t28, t29, t30, t31,
        ] = tables();
        let mut crc = self.state;
        // Eight independent 4-byte lanes per step; only lane 0 mixes with
        // the running state, so seven of the eight fold chains run free of
        // the serial dependency. The block is explicitly unrolled with one
        // named table per term — a lane loop leaves the table indices
        // opaque to the optimizer. A 32-byte block is exactly eight 4-byte
        // words, so the slice pattern always matches.
        let (blocks, rem) = bytes.as_chunks::<SLICES>();
        for w in blocks {
            let (words, _) = w.as_chunks::<4>();
            let [wa, wb, wc, wd, we, wf, wg, wh] = words else {
                continue;
            };
            let a = u32::from_le_bytes(*wa) ^ crc;
            let b = u32::from_le_bytes(*wb);
            let c = u32::from_le_bytes(*wc);
            let d = u32::from_le_bytes(*wd);
            let e = u32::from_le_bytes(*we);
            let f = u32::from_le_bytes(*wf);
            let g = u32::from_le_bytes(*wg);
            let h = u32::from_le_bytes(*wh);
            crc = at(t31, a)
                ^ at(t30, a >> 8)
                ^ at(t29, a >> 16)
                ^ at(t28, a >> 24)
                ^ at(t27, b)
                ^ at(t26, b >> 8)
                ^ at(t25, b >> 16)
                ^ at(t24, b >> 24)
                ^ at(t23, c)
                ^ at(t22, c >> 8)
                ^ at(t21, c >> 16)
                ^ at(t20, c >> 24)
                ^ at(t19, d)
                ^ at(t18, d >> 8)
                ^ at(t17, d >> 16)
                ^ at(t16, d >> 24)
                ^ at(t15, e)
                ^ at(t14, e >> 8)
                ^ at(t13, e >> 16)
                ^ at(t12, e >> 24)
                ^ at(t11, f)
                ^ at(t10, f >> 8)
                ^ at(t9, f >> 16)
                ^ at(t8, f >> 24)
                ^ at(t7, g)
                ^ at(t6, g >> 8)
                ^ at(t5, g >> 16)
                ^ at(t4, g >> 24)
                ^ at(t3, h)
                ^ at(t2, h >> 8)
                ^ at(t1, h >> 16)
                ^ at(t0, h >> 24);
        }
        for &b in rem {
            crc = (crc >> 8) ^ at(t0, crc ^ u32::from(b));
        }
        self.state = crc;
    }

    /// Final checksum value.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference byte-at-a-time implementation, kept only to pin the
    /// slicing-by-32 fast path to the classic algorithm.
    fn crc32_bytewise(bytes: &[u8]) -> u32 {
        let t = &tables()[0];
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
        }
        crc ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sliced_path_matches_bytewise_at_every_alignment() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 31 % 251) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"hey hey, my my, skewness is here to stay";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn incremental_split_mid_word_equals_one_shot() {
        let data: Vec<u8> = (0..100u8).collect();
        for split in [1, 3, 8, 13, 64, 99] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), crc32(&data), "split {split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 1024];
        data[500] = 0x55;
        let base = crc32(&data);
        data[500] ^= 0x01;
        assert_ne!(crc32(&data), base);
    }
}
