//! # ebs-store — persistent columnar trace store with streaming replay
//!
//! The paper's three datasets (trace events, performance metrics,
//! specifications; §2.3) are expensive to regenerate and much too large to
//! re-derive per experiment. This crate gives them a durable on-disk form:
//! a versioned, chunked, column-major binary container in which each chunk
//! is sealed by a length header and a frame seal — CRC32 for v1 files,
//! the multiply-rotate [`seal::seal32`] for v2, dispatched on the header
//! version.
//!
//! Layout (DESIGN.md §12, §14):
//!
//! ```text
//! file   := magic "EBSSTORE" version(u32 LE) chunk* end-chunk
//! chunk  := kind(u8) payload_len(u32 LE) seal(u32 LE) payload
//! ```
//!
//! Payloads are column-major. Format v2 (DESIGN.md §14) batch-encodes each
//! column through the [`codec`] kernels: group-varint for spiky columns,
//! zigzag + frame-of-reference byte-packing for narrow-range ones, with
//! the encoder picking the smaller representation per column. Timestamps
//! are delta-encoded (events are globally time-sorted, so deltas are
//! small), VD ids are dictionary-compressed per chunk, offsets are per-VD
//! wrapping deltas, and integral metric samples pack as integer columns;
//! floats that are not integral travel as raw IEEE-754 bits, so a
//! save→load→save cycle is byte-identical. The [`writer::StoreWriter`]
//! produces v2 containers; the [`reader::ChunkReader`] reads v1 and v2
//! (v1 decodes bit-for-bit through the legacy per-value path) and either
//! materializes chunks fully or streams them one at a time into a
//! [`stream::StreamSummary`], whose column-at-a-time fold computes the
//! paper's CCR / P2A / size-quantile statistics without ever holding the
//! whole trace in memory — or allocating per chunk in steady state.
//!
//! Failure model: every decode path returns a typed
//! [`ebs_core::error::EbsError`] — [`Truncated`], [`ChecksumMismatch`],
//! [`VersionSkew`], or [`CorruptStore`] — and hostile input can never
//! panic or trigger an unbounded allocation (declared counts are validated
//! against the bytes actually present before any `Vec` is reserved).
//!
//! The crate is dependency-free by design (the build environment is
//! offline): CRC32 and varints are implemented in-repo, the same way
//! `ebs_core::hash` carries its own FxHash.
//!
//! [`Truncated`]: ebs_core::error::EbsError::Truncated
//! [`ChecksumMismatch`]: ebs_core::error::EbsError::ChecksumMismatch
//! [`VersionSkew`]: ebs_core::error::EbsError::VersionSkew
//! [`CorruptStore`]: ebs_core::error::EbsError::CorruptStore

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The whole crate is a total module (ebs-lint rule D3): decode paths must
// return typed errors, never panic. Test code is exempt — the cfg_attr
// keeps `cargo test` usable while CI's `-D warnings` enforces the rest.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod bytes;
pub mod codec;
pub mod columns;
pub mod crc32;
pub mod format;
pub mod manifest;
pub mod reader;
pub mod seal;
pub mod stats;
pub mod stream;
pub mod writer;

pub use bytes::{ByteReader, ByteWriter};
pub use columns::{
    decode_events, decode_series_set, decode_specs, encode_events, encode_series_set, encode_specs,
    events_from_columns, EventColumnBytes, EventColumns, EventScratch, SpecRow,
};
pub use crc32::{crc32, Crc32};
pub use format::{
    EVENTS_PER_CHUNK, FRAME_LEN, HEADER_LEN, MAGIC, MAX_CHUNK_EVENTS, MAX_CHUNK_LEN, VERSION,
};
pub use manifest::{shard_file_name, ShardEntry, ShardManifest, ShardMeta, MANIFEST_FILE};
pub use reader::{Chunk, ChunkReader, EndSummary, EventChunks, SliceChunkReader};
pub use stats::StoreStats;
pub use stream::{fold_store, StreamSummary};
pub use writer::StoreWriter;
