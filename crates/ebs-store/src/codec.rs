//! Batched integer column codecs for the v2 container: group varint and
//! byte-granular frame-of-reference packing, plus the zigzag map that turns
//! signed deltas into small unsigned values.
//!
//! Both codecs decode in groups — a control byte or block header is
//! validated once, then 4–128 values are unpacked from a single
//! bounds-checked byte window with no per-value branching on the payload
//! length. That is what moves decode from ~19M events/s (the v1 per-value
//! LEB128 loop) to the ≥5x target BENCH_store.json records: the inner
//! loops are fixed-width little-endian loads that the compiler unrolls and
//! vectorizes.
//!
//! Wire formats (DESIGN.md §14):
//!
//! * **Group varint** (`column_tag::GROUP_VARINT`): values in groups of
//!   [`GROUP`] = 4. Each group is one control byte — four 2-bit length
//!   classes mapping to 1, 2, 4 or 8 little-endian bytes — followed by the
//!   packed values. A tail group of fewer than 4 values keeps its unused
//!   control bits zero (decoders reject anything else, so the encoding of
//!   a column is canonical).
//! * **Frame of reference** (`column_tag::FOR_BYTES`): values in blocks of
//!   [`MINIBLOCK`] = 128. Each block is `min` as a LEB128 varint, a width
//!   byte `W ∈ 0..=8`, then `W × block_len` bytes of little-endian
//!   `value − min` deltas. `W = 0` encodes an all-equal block in just the
//!   header. Widths are byte-granular rather than bit-granular on purpose:
//!   the ~12% size a bit-packer would save costs ~3x in decode throughput,
//!   and decode is the gating path.
//!
//! [`encode_column`] prefixes either codec with a two-byte column header:
//! the codec tag and an **alignment shift**. Block-device columns are
//! dominated by 4 KiB-aligned offsets and sizes, so the encoder strips the
//! longest run of trailing zero bits shared by every value (the trailing
//! zeros of their OR) before packing and records that shift; the decoder
//! shifts back. A 4 KiB-aligned LBA column loses 12 bits — 1.5 bytes —
//! per value for one header byte per column. The shift is canonical: when
//! it is nonzero the decoder requires some stored value to be odd (the OR
//! of the packed values has bit 0 set), otherwise the encoder would have
//! chosen a larger shift. Codec choice is decode-speed biased: group
//! varint must beat frame-of-reference by more than one part in sixteen
//! to be picked, since FOR's fixed-width inner loops decode ~3x faster —
//! tag, shift and codec are all pure functions of the values, so
//! re-encoding decoded data is byte-identical.
//!
//! Failure model: decoders return typed [`EbsError`]s and never panic.
//! Hostile block headers can make a value wrap (`min + delta` is a
//! wrapping add — honest encoders never overflow since `delta = v − min`);
//! the semantic validation layered above (range checks, fleet lookup,
//! END-chunk totals) rejects the result, and no memory unsafety or panic
//! is reachable.

use crate::bytes::{ByteReader, ByteWriter};
use ebs_core::error::EbsError;

/// Values per group-varint group (one control byte each).
pub const GROUP: usize = 4;

/// Values per frame-of-reference miniblock (one `min`/width header each).
pub const MINIBLOCK: usize = 128;

/// First byte of every encoded column: which codec follows.
pub mod column_tag {
    /// Group-varint encoding (groups of 4, 2-bit length classes).
    pub const GROUP_VARINT: u8 = 1;
    /// Byte-granular frame-of-reference encoding (miniblocks of 128).
    pub const FOR_BYTES: u8 = 2;
}

/// Map a signed value onto the small-unsigned range varints and FOR like:
/// 0, -1, 1, -2, … become 0, 1, 2, 3, …
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v as u64) << 1) ^ ((v >> 63) as u64)
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// 2-bit group-varint length class of a value: 0..=3 for 1/2/4/8 bytes.
#[inline]
fn len_class(v: u64) -> u8 {
    if v < 1 << 8 {
        0
    } else if v < 1 << 16 {
        1
    } else if v < 1 << 32 {
        2
    } else {
        3
    }
}

/// Little-endian load of up to `N` bytes, zero-padded (the panic-free
/// spelling of `try_into().unwrap()` for a prefix already length-checked
/// by the caller's byte-window split).
#[inline]
fn le_array<const N: usize>(bytes: &[u8]) -> [u8; N] {
    let mut a = [0u8; N];
    for (dst, src) in a.iter_mut().zip(bytes) {
        *dst = *src;
    }
    a
}

/// Decode one packed little-endian value of `len ∈ {1,2,4,8}` bytes.
#[inline]
fn load_le(bytes: &[u8]) -> u64 {
    match bytes.len() {
        1 => u64::from(bytes.first().copied().unwrap_or(0)),
        2 => u64::from(u16::from_le_bytes(le_array::<2>(bytes))),
        4 => u64::from(u32::from_le_bytes(le_array::<4>(bytes))),
        _ => u64::from_le_bytes(le_array::<8>(bytes)),
    }
}

/// Encoded size of `vals` under LEB128 varint (used by size accounting).
pub fn varint_size(vals: &[u64]) -> usize {
    vals.iter().map(|&v| varint_len(v)).sum()
}

/// Bytes one LEB128 varint takes.
#[inline]
fn varint_len(v: u64) -> usize {
    let bits = (64 - v.leading_zeros()).max(1) as usize;
    bits.div_ceil(7)
}

/// Exact encoded size of `vals` under group varint.
pub fn group_varint_size(vals: &[u64]) -> usize {
    let ctrl_bytes = vals.len().div_ceil(GROUP);
    let data_bytes: usize = vals.iter().map(|&v| 1usize << len_class(v)).sum();
    ctrl_bytes + data_bytes
}

/// Append `vals` in group-varint form (no tag byte; see [`encode_column`]).
pub fn encode_group_varint(w: &mut ByteWriter, vals: &[u64]) {
    for group in vals.chunks(GROUP) {
        let mut ctrl = 0u8;
        for (k, &v) in group.iter().enumerate() {
            ctrl |= len_class(v) << (2 * k);
        }
        w.put_u8(ctrl);
        for &v in group {
            match len_class(v) {
                0 => w.put_u8(v as u8),
                1 => w.put_bytes(&(v as u16).to_le_bytes()),
                2 => w.put_bytes(&(v as u32).to_le_bytes()),
                _ => w.put_bytes(&v.to_le_bytes()),
            }
        }
    }
}

/// Total packed bytes a full group's control byte declares.
#[inline]
fn group_data_len(ctrl: u8) -> usize {
    (1usize << (ctrl & 3))
        + (1usize << (ctrl >> 2 & 3))
        + (1usize << (ctrl >> 4 & 3))
        + (1usize << (ctrl >> 6 & 3))
}

/// Unpack one group's byte window into `out`. The window length was
/// derived from the control byte, so the per-value splits cannot fail;
/// the typed error is the totality fallback. While ≥8 window bytes
/// remain, each value is one unconditional 8-byte load masked down to
/// its length class — no per-value branching on the payload.
#[inline]
fn unpack_group(
    what: &str,
    mut window: &[u8],
    ctrl: u8,
    n: usize,
    out: &mut Vec<u64>,
) -> Result<(), EbsError> {
    let mut c = ctrl;
    for _ in 0..n {
        let len = 1usize << (c & 3);
        c >>= 2;
        if let Some(head) = window.first_chunk::<8>() {
            let mask = if len == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * len)) - 1
            };
            out.push(u64::from_le_bytes(*head) & mask);
            window = window.get(len..).unwrap_or(&[]);
        } else {
            let (head, rest) = window.split_at_checked(len).ok_or_else(|| {
                EbsError::corrupt_store(format!(
                    "{what}: group window shorter than its control byte"
                ))
            })?;
            out.push(load_le(head));
            window = rest;
        }
    }
    Ok(())
}

/// Decode `count` group-varint values, appending to `out`.
///
/// Tail groups must keep unused control bits zero — anything else is
/// [`EbsError::CorruptStore`], which keeps the encoding canonical.
pub fn decode_group_varint_into(
    r: &mut ByteReader<'_>,
    count: usize,
    out: &mut Vec<u64>,
) -> Result<(), EbsError> {
    // Every value takes ≥1 data byte plus its share of a control byte, so
    // a count the remaining bytes cannot possibly hold is corruption —
    // checked before the reserve, like `ByteReader::check_count`.
    let min_bytes = count.saturating_add(count.div_ceil(GROUP));
    if r.remaining() < min_bytes {
        return Err(EbsError::corrupt_store(format!(
            "group-varint column declares {count} values but only {} bytes remain",
            r.remaining()
        )));
    }
    out.reserve(count);
    let full = count / GROUP;
    let tail = count % GROUP;
    // Decode against the whole remaining payload as one bounds-checked
    // window: as long as ≥33 bytes remain (control byte plus the largest
    // possible group), every value is an unconditional 8-byte load masked
    // to its length class — the per-value splits only reappear for the
    // last few groups before the end of the payload.
    let data = r.rest();
    let mut pos = 0usize;
    let mut groups_left = full;
    while groups_left > 0 {
        let Some(window) = data.get(pos..).filter(|w| w.len() > 4 * 8) else {
            break;
        };
        let (&ctrl, mut body) = window.split_first().unwrap_or((&0, &[]));
        if ctrl == 0 {
            // All four values are single bytes — the common case for
            // dictionary-index columns; skip the per-value class walk.
            out.extend(body.iter().take(GROUP).map(|&b| u64::from(b)));
            pos += 1 + GROUP;
        } else {
            let mut c = ctrl;
            for _ in 0..GROUP {
                let len = 1usize << (c & 3);
                c >>= 2;
                let Some(head) = body.first_chunk::<8>() else {
                    return Err(EbsError::corrupt_store(
                        "group-varint column: group window shorter than its control byte"
                            .to_string(),
                    ));
                };
                let mask = if len == 8 {
                    u64::MAX
                } else {
                    (1u64 << (8 * len)) - 1
                };
                out.push(u64::from_le_bytes(*head) & mask);
                body = body.get(len..).unwrap_or(&[]);
            }
            pos += 1 + group_data_len(ctrl);
        }
        groups_left -= 1;
    }
    r.skip(pos)?;
    for _ in 0..groups_left {
        let ctrl = r.get_u8()?;
        let window = r.get_bytes(group_data_len(ctrl))?;
        unpack_group("group-varint column", window, ctrl, GROUP, out)?;
    }
    if tail > 0 {
        let ctrl = r.get_u8()?;
        if ctrl >> (2 * tail) != 0 {
            return Err(EbsError::corrupt_store(
                "group-varint column: tail control byte sets bits for absent values".to_string(),
            ));
        }
        let mut data_len = 0usize;
        let mut c = ctrl;
        for _ in 0..tail {
            data_len += 1usize << (c & 3);
            c >>= 2;
        }
        let window = r.get_bytes(data_len)?;
        unpack_group("group-varint column", window, ctrl, tail, out)?;
    }
    Ok(())
}

/// Bytes needed to hold `x` little-endian (0 for `x == 0`).
#[inline]
fn byte_width(x: u64) -> usize {
    ((64 - x.leading_zeros()) as usize).div_ceil(8)
}

/// Per-block (min, width) header of a FOR miniblock.
#[inline]
fn block_header(block: &[u64]) -> (u64, usize) {
    let mut min = u64::MAX;
    let mut max = 0u64;
    for &v in block {
        min = min.min(v);
        max = max.max(v);
    }
    if block.is_empty() {
        return (0, 0);
    }
    (min, byte_width(max - min))
}

/// Exact encoded size of `vals` under frame-of-reference packing.
pub fn for_size(vals: &[u64]) -> usize {
    let mut size = 0usize;
    for block in vals.chunks(MINIBLOCK) {
        let (min, width) = block_header(block);
        size += varint_len(min) + 1 + width * block.len();
    }
    size
}

/// Append `vals` in frame-of-reference form (no tag byte; see
/// [`encode_column`]).
pub fn encode_for(w: &mut ByteWriter, vals: &[u64]) {
    for block in vals.chunks(MINIBLOCK) {
        let (min, width) = block_header(block);
        w.put_varint(min);
        w.put_u8(width as u8);
        match width {
            0 => {}
            1 => {
                for &v in block {
                    w.put_u8((v - min) as u8);
                }
            }
            2 => {
                for &v in block {
                    w.put_bytes(&((v - min) as u16).to_le_bytes());
                }
            }
            4 => {
                for &v in block {
                    w.put_bytes(&((v - min) as u32).to_le_bytes());
                }
            }
            _ => {
                for &v in block {
                    let bytes = (v - min).to_le_bytes();
                    for &b in bytes.iter().take(width) {
                        w.put_u8(b);
                    }
                }
            }
        }
    }
}

/// Decode `count` frame-of-reference values, appending to `out`.
pub fn decode_for_into(
    r: &mut ByteReader<'_>,
    count: usize,
    out: &mut Vec<u64>,
) -> Result<(), EbsError> {
    // Each block of ≤128 values costs ≥2 header bytes, so a count beyond
    // 64x the remaining payload is corruption — checked before the reserve.
    let min_bytes = count.div_ceil(MINIBLOCK).saturating_mul(2);
    if r.remaining() < min_bytes {
        return Err(EbsError::corrupt_store(format!(
            "frame-of-reference column declares {count} values but only {} bytes remain",
            r.remaining()
        )));
    }
    out.reserve(count);
    let mut left = count;
    while left > 0 {
        let n = left.min(MINIBLOCK);
        let min = r.get_varint()?;
        let width = usize::from(r.get_u8()?);
        if width > 8 {
            return Err(EbsError::corrupt_store(format!(
                "frame-of-reference block declares width {width}, max is 8"
            )));
        }
        if width == 0 {
            for _ in 0..n {
                out.push(min);
            }
        } else {
            // One const-width arm per width: `as_chunks` + array
            // destructuring keeps the inner loops free of bounds checks
            // and per-value capacity checks (the iterators are exact-size,
            // so `extend` reserves once), and the fixed shifts let the
            // compiler unroll and vectorize. The remainders are empty —
            // the window is exactly `n * width` bytes.
            let bytes = r.get_bytes(n * width)?;
            match width {
                1 => out.extend(bytes.iter().map(|&b| min.wrapping_add(u64::from(b)))),
                2 => {
                    let (chunks, _) = bytes.as_chunks::<2>();
                    out.extend(
                        chunks
                            .iter()
                            .map(|&c| min.wrapping_add(u64::from(u16::from_le_bytes(c)))),
                    );
                }
                3 => {
                    let (chunks, _) = bytes.as_chunks::<3>();
                    out.extend(chunks.iter().map(|&[a, b, c]| {
                        min.wrapping_add(u64::from(a) | u64::from(b) << 8 | u64::from(c) << 16)
                    }));
                }
                4 => {
                    let (chunks, _) = bytes.as_chunks::<4>();
                    out.extend(
                        chunks
                            .iter()
                            .map(|&c| min.wrapping_add(u64::from(u32::from_le_bytes(c)))),
                    );
                }
                5 => {
                    let (chunks, _) = bytes.as_chunks::<5>();
                    out.extend(chunks.iter().map(|&[a, b, c, d, e]| {
                        let lo = u64::from(u32::from_le_bytes([a, b, c, d]));
                        min.wrapping_add(lo | u64::from(e) << 32)
                    }));
                }
                6 => {
                    let (chunks, _) = bytes.as_chunks::<6>();
                    out.extend(chunks.iter().map(|&[a, b, c, d, e, f]| {
                        let lo = u64::from(u32::from_le_bytes([a, b, c, d]));
                        let hi = u64::from(u16::from_le_bytes([e, f]));
                        min.wrapping_add(lo | hi << 32)
                    }));
                }
                7 => {
                    let (chunks, _) = bytes.as_chunks::<7>();
                    out.extend(chunks.iter().map(|&[a, b, c, d, e, f, g]| {
                        let lo = u64::from(u32::from_le_bytes([a, b, c, d]));
                        let hi = u64::from(u32::from_le_bytes([e, f, g, 0]));
                        min.wrapping_add(lo | hi << 32)
                    }));
                }
                _ => {
                    let (chunks, _) = bytes.as_chunks::<8>();
                    out.extend(
                        chunks
                            .iter()
                            .map(|&c| min.wrapping_add(u64::from_le_bytes(c))),
                    );
                }
            }
        }
        left -= n;
    }
    Ok(())
}

/// Whether group varint earns its slower decode for this column: the
/// frame-of-reference inner loops are fixed-width and vectorize, so FOR
/// wins unless group varint is smaller by more than one part in sixteen.
/// Like the rest of the encoding, the rule is a pure function of the
/// values, so re-encoding decoded data stays byte-identical.
#[inline]
fn pick_group_varint(gv_size: usize, for_size: usize) -> bool {
    gv_size.saturating_mul(16) < for_size.saturating_mul(15)
}

/// Trailing zero bits shared by every value in the column: the alignment
/// shift stripped before packing. An all-zero (or empty) column shifts by
/// zero so its encoding stays canonical.
#[inline]
fn column_shift(vals: &[u64]) -> u32 {
    let or_all = vals.iter().fold(0u64, |acc, &v| acc | v);
    if or_all == 0 {
        0
    } else {
        or_all.trailing_zeros()
    }
}

/// Append `vals` as a tagged column: the codec tag, the alignment shift,
/// then the shifted column under the codec [`pick_group_varint`] selects
/// (frame-of-reference unless group varint is meaningfully smaller).
/// Returns the bytes appended, for the per-column accounting the bench
/// and `--trace` stats report.
pub fn encode_column(w: &mut ByteWriter, vals: &[u64]) -> u64 {
    let before = w.len();
    let shift = column_shift(vals);
    let shifted;
    let packed: &[u64] = if shift == 0 {
        vals
    } else {
        shifted = vals.iter().map(|&v| v >> shift).collect::<Vec<u64>>();
        &shifted
    };
    if pick_group_varint(group_varint_size(packed), for_size(packed)) {
        w.put_u8(column_tag::GROUP_VARINT);
        w.put_u8(shift as u8);
        encode_group_varint(w, packed);
    } else {
        w.put_u8(column_tag::FOR_BYTES);
        w.put_u8(shift as u8);
        encode_for(w, packed);
    }
    (w.len() - before) as u64
}

/// Exact size [`encode_column`] would produce for `vals`, without writing
/// anything. The metric encoder uses this to pick between integral-column
/// and sparse/raw float packings by actual byte cost.
pub fn encoded_column_size(vals: &[u64]) -> usize {
    let shift = column_shift(vals);
    let shifted;
    let packed: &[u64] = if shift == 0 {
        vals
    } else {
        shifted = vals.iter().map(|&v| v >> shift).collect::<Vec<u64>>();
        &shifted
    };
    let (gv, fo) = (group_varint_size(packed), for_size(packed));
    2 + if pick_group_varint(gv, fo) { gv } else { fo }
}

/// Decode one tagged column of `count` values into `out` (cleared first).
/// Returns the bytes consumed including the tag and shift header.
///
/// The shift is validated for canonicality: when it is nonzero, the OR of
/// the packed values must be odd (a larger shift would otherwise have been
/// available to the encoder), which also rules out a nonzero shift on an
/// empty or all-zero column. Shifting back uses `wrapping_shl`, so hostile
/// wide values wrap rather than panic and are rejected by the semantic
/// validation above this layer.
pub fn decode_column_into(
    r: &mut ByteReader<'_>,
    count: usize,
    out: &mut Vec<u64>,
) -> Result<u64, EbsError> {
    let before = r.remaining();
    out.clear();
    let tag = r.get_u8()?;
    let shift = u32::from(r.get_u8()?);
    if shift >= 64 {
        return Err(EbsError::corrupt_store(format!(
            "column alignment shift {shift} is out of range"
        )));
    }
    match tag {
        column_tag::GROUP_VARINT => decode_group_varint_into(r, count, out)?,
        column_tag::FOR_BYTES => decode_for_into(r, count, out)?,
        other => {
            return Err(EbsError::corrupt_store(format!(
                "unknown column codec tag {other}"
            )))
        }
    }
    if shift > 0 {
        let mut or_all = 0u64;
        for v in out.iter_mut() {
            or_all |= *v;
            *v = v.wrapping_shl(shift);
        }
        if or_all & 1 == 0 {
            return Err(EbsError::corrupt_store(format!(
                "column alignment shift {shift} is not canonical"
            )));
        }
    }
    Ok((before - r.remaining()) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random column (SplitMix64, fixed seed).
    fn random_column(len: usize, seed: u64, mask: u64) -> Vec<u64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & mask
            })
            .collect()
    }

    fn adversarial_columns() -> Vec<Vec<u64>> {
        vec![
            vec![],
            vec![0],
            vec![u64::MAX],
            vec![7; 1000],
            (0..1000u64).collect(),
            (0..500u64).map(|i| i * (1 << 40)).collect(),
            (0..999u64)
                .map(|i| if i % 2 == 0 { 0 } else { u64::MAX })
                .collect(),
            random_column(4096, 1, u64::MAX),
            random_column(4097, 2, 0xFF),
            random_column(130, 3, 0xFFFF_FFFF),
            random_column(3, 4, u64::MAX),
        ]
    }

    #[test]
    fn zigzag_is_a_bijection_on_edge_values() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        // Small magnitudes map to small codes, which is the whole point.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn group_varint_round_trips_and_sizes_exactly() {
        for vals in adversarial_columns() {
            let mut w = ByteWriter::new();
            encode_group_varint(&mut w, &vals);
            let bytes = w.into_bytes();
            assert_eq!(bytes.len(), group_varint_size(&vals), "{} vals", vals.len());
            let mut r = ByteReader::new(&bytes, "test");
            let mut out = Vec::new();
            decode_group_varint_into(&mut r, vals.len(), &mut out).unwrap();
            r.expect_end().unwrap();
            assert_eq!(out, vals);
        }
    }

    #[test]
    fn for_round_trips_and_sizes_exactly() {
        for vals in adversarial_columns() {
            let mut w = ByteWriter::new();
            encode_for(&mut w, &vals);
            let bytes = w.into_bytes();
            assert_eq!(bytes.len(), for_size(&vals), "{} vals", vals.len());
            let mut r = ByteReader::new(&bytes, "test");
            let mut out = Vec::new();
            decode_for_into(&mut r, vals.len(), &mut out).unwrap();
            r.expect_end().unwrap();
            assert_eq!(out, vals);
        }
    }

    #[test]
    fn tagged_columns_round_trip_and_account_their_bytes() {
        for vals in adversarial_columns() {
            let mut w = ByteWriter::new();
            let written = encode_column(&mut w, &vals);
            let bytes = w.into_bytes();
            assert_eq!(written as usize, bytes.len());
            let mut r = ByteReader::new(&bytes, "test");
            let mut out = Vec::new();
            let consumed = decode_column_into(&mut r, vals.len(), &mut out).unwrap();
            r.expect_end().unwrap();
            assert_eq!(consumed, written);
            assert_eq!(out, vals);
        }
    }

    #[test]
    fn all_equal_blocks_collapse_to_headers_only() {
        let vals = vec![123_456u64; 1000];
        // ceil(1000/128) = 8 blocks, each varint(123456)=3 bytes + width 0.
        assert_eq!(for_size(&vals), 8 * 4);
        // The tagged column also strips the shared alignment: 123456 has
        // six trailing zero bits, so each block header holds varint(1929)
        // = 2 bytes + width 0, after the 2-byte tag/shift header.
        let mut w = ByteWriter::new();
        assert_eq!(encode_column(&mut w, &vals), 2 + 8 * 3);
    }

    #[test]
    fn aligned_columns_shed_their_trailing_zero_bits() {
        // 4 KiB-aligned offsets spanning ~1 GiB: raw values need 4-byte
        // classes, shifted ones fit 2 bytes. The shift must round-trip.
        let vals: Vec<u64> = (0..1000u64).map(|i| i * 17 * 4096).collect();
        let mut w = ByteWriter::new();
        let written = encode_column(&mut w, &vals);
        assert_eq!(written as usize, encoded_column_size(&vals));
        let bytes = w.into_bytes();
        assert_eq!(bytes.get(1), Some(&12u8), "shift byte");
        assert!(
            (written as usize) < 2 + 3 * vals.len(),
            "shifted column should pack under 3 bytes/value, got {written}"
        );
        let mut r = ByteReader::new(&bytes, "aligned");
        let mut out = Vec::new();
        decode_column_into(&mut r, vals.len(), &mut out).unwrap();
        r.expect_end().unwrap();
        assert_eq!(out, vals);
    }

    #[test]
    fn non_canonical_shifts_are_rejected() {
        // Hand-build a column whose packed values are all even under a
        // nonzero shift — the encoder could never emit this (it would
        // have folded that factor of two into the shift itself).
        let mut w = ByteWriter::new();
        w.put_u8(column_tag::GROUP_VARINT);
        w.put_u8(1);
        encode_group_varint(&mut w, &[2, 4, 6]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "even-packed");
        let mut out = Vec::new();
        assert!(matches!(
            decode_column_into(&mut r, 3, &mut out),
            Err(EbsError::CorruptStore(_))
        ));
        // A nonzero shift on an empty column is equally impossible.
        let mut r = ByteReader::new(&[column_tag::FOR_BYTES, 5], "empty-shifted");
        assert!(matches!(
            decode_column_into(&mut r, 0, &mut out),
            Err(EbsError::CorruptStore(_))
        ));
        // A shift past the word size is rejected before any decode work.
        let mut r = ByteReader::new(&[column_tag::FOR_BYTES, 64, 0, 0], "wide-shift");
        assert!(matches!(
            decode_column_into(&mut r, 1, &mut out),
            Err(EbsError::CorruptStore(_))
        ));
    }

    #[test]
    fn encoder_picks_the_smaller_codec() {
        // Tight range around a huge base: FOR wins (1 byte/val vs 8).
        let narrow: Vec<u64> = (0..512u64).map(|i| (1 << 50) + (i % 100)).collect();
        let mut w = ByteWriter::new();
        encode_column(&mut w, &narrow);
        assert_eq!(w.into_bytes().first(), Some(&column_tag::FOR_BYTES));
        // One huge outlier per group ruins FOR's width; group varint wins.
        let spiky: Vec<u64> = (0..512u64)
            .map(|i| if i % 4 == 0 { u64::MAX } else { 1 })
            .collect();
        let mut w = ByteWriter::new();
        encode_column(&mut w, &spiky);
        assert_eq!(w.into_bytes().first(), Some(&column_tag::GROUP_VARINT));
    }

    #[test]
    fn truncated_columns_are_typed_errors_not_panics() {
        let vals = random_column(1000, 9, u64::MAX);
        let mut w = ByteWriter::new();
        encode_column(&mut w, &vals);
        let bytes = w.into_bytes();
        for cut in [0, 1, 2, bytes.len() / 2, bytes.len() - 1] {
            let slice = bytes.get(..cut).unwrap_or(&[]);
            let mut r = ByteReader::new(slice, "cut");
            let mut out = Vec::new();
            let err = decode_column_into(&mut r, vals.len(), &mut out).unwrap_err();
            assert!(
                matches!(err, EbsError::Truncated(_) | EbsError::CorruptStore(_)),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn hostile_headers_are_corruption_not_allocation() {
        // Unknown tag.
        let mut r = ByteReader::new(&[9, 0, 0], "tag");
        let mut out = Vec::new();
        assert!(matches!(
            decode_column_into(&mut r, 2, &mut out),
            Err(EbsError::CorruptStore(_))
        ));
        // FOR width over 8.
        let mut w = ByteWriter::new();
        w.put_varint(0);
        w.put_u8(9);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "width");
        assert!(matches!(
            decode_for_into(&mut r, 4, &mut out),
            Err(EbsError::CorruptStore(_))
        ));
        // Declared counts far past the payload fail before reserving.
        let mut r = ByteReader::new(&[0u8; 8], "count");
        assert!(matches!(
            decode_group_varint_into(&mut r, usize::MAX / 2, &mut out),
            Err(EbsError::CorruptStore(_))
        ));
        let mut r = ByteReader::new(&[0u8; 8], "count");
        assert!(matches!(
            decode_for_into(&mut r, usize::MAX / 2, &mut out),
            Err(EbsError::CorruptStore(_))
        ));
    }

    #[test]
    fn nonzero_tail_control_bits_are_rejected() {
        // 5 values: one full group + a tail of 1. Corrupt the tail control
        // byte so it claims a length class for an absent value.
        let vals = [1u64, 2, 3, 4, 5];
        let mut w = ByteWriter::new();
        encode_group_varint(&mut w, &vals);
        let mut bytes = w.into_bytes();
        let tail_ctrl_at = bytes.len() - 2; // [ctrl, value] tail layout
        if let Some(b) = bytes.get_mut(tail_ctrl_at) {
            *b |= 0b1100;
        }
        let mut r = ByteReader::new(&bytes, "tail");
        let mut out = Vec::new();
        let err = decode_group_varint_into(&mut r, vals.len(), &mut out).unwrap_err();
        assert!(
            matches!(err, EbsError::CorruptStore(_) | EbsError::Truncated(_)),
            "{err}"
        );
    }
}
