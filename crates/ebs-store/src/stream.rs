//! Streaming aggregation over event chunks: the paper's headline
//! skewness statistics (CCR, P2A, size quantiles) computed one chunk at a
//! time, so a multi-gigabyte trace never has to materialize as a single
//! `Vec<IoEvent>`.
//!
//! The summary keeps O(vd_count + ticks + distinct sizes) state — per-VD
//! byte totals feed [`ebs_analysis::ccr`], per-tick byte totals feed
//! [`ebs_analysis::p2a`], and a size histogram answers quantiles with the
//! same linear-interpolation convention as [`ebs_analysis::quantile`].

use std::collections::BTreeMap;

use ebs_analysis::{ccr, p2a};
use ebs_core::error::EbsError;
use ebs_core::io::IoEvent;
use ebs_core::time::TickSpec;

/// Incremental trace summary, fed by [`fold_chunk`](Self::fold_chunk).
#[derive(Clone, Debug)]
pub struct StreamSummary {
    ticks: TickSpec,
    vd_bytes: Vec<f64>,
    tick_bytes: Vec<f64>,
    size_counts: BTreeMap<u32, u64>,
    events: u64,
    bytes: u64,
}

impl StreamSummary {
    /// Empty summary for a fleet of `vd_count` disks over the `ticks` grid.
    pub fn new(vd_count: usize, ticks: TickSpec) -> Self {
        Self {
            ticks,
            vd_bytes: vec![0.0; vd_count],
            tick_bytes: vec![0.0; ticks.ticks as usize],
            size_counts: BTreeMap::new(),
            events: 0,
            bytes: 0,
        }
    }

    /// Absorb one decoded chunk of events.
    ///
    /// A `vd` index outside the fleet is [`EbsError::CorruptStore`] — the
    /// summary is fed from disk, so out-of-range ids mean a damaged or
    /// mismatched file, not a programming error.
    pub fn fold_chunk(&mut self, events: &[IoEvent]) -> Result<(), EbsError> {
        for ev in events {
            let vd = ev.vd.0 as usize;
            let size = f64::from(ev.size);
            let fleet_size = self.vd_bytes.len();
            *self.vd_bytes.get_mut(vd).ok_or_else(|| {
                EbsError::corrupt_store(format!(
                    "event names vd {vd} but the fleet has {fleet_size} disks"
                ))
            })? += size;
            // `tick_of_us` clamps to the grid, so this lookup cannot miss on
            // any input; the typed error is the totality fallback.
            let tick = self.ticks.tick_of_us(ev.t_us) as usize;
            *self.tick_bytes.get_mut(tick).ok_or_else(|| {
                EbsError::corrupt_store(format!("tick {tick} outside the summary grid"))
            })? += size;
            *self.size_counts.entry(ev.size).or_insert(0) += 1;
            self.events += 1;
            self.bytes += u64::from(ev.size);
        }
        Ok(())
    }

    /// Events absorbed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total bytes moved by absorbed events.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Per-VD byte contributions (index = vd id).
    pub fn vd_bytes(&self) -> &[f64] {
        &self.vd_bytes
    }

    /// Per-tick byte series over the configured grid.
    pub fn tick_bytes(&self) -> &[f64] {
        &self.tick_bytes
    }

    /// Capacity contribution ratio: smallest fraction of disks carrying
    /// `frac` of the traffic (paper §3.1). `None` while no bytes absorbed.
    pub fn ccr(&self, frac: f64) -> Option<f64> {
        ccr(&self.vd_bytes, frac)
    }

    /// Peak-to-average ratio of the per-tick byte series (paper §3.2).
    pub fn p2a(&self) -> Option<f64> {
        p2a(&self.tick_bytes)
    }

    /// The `q`-quantile of request sizes, linear-interpolated between order
    /// statistics exactly like [`ebs_analysis::quantile`] — but computed
    /// from the weighted histogram, without expanding one value per event.
    pub fn size_quantile(&self, q: f64) -> Option<f64> {
        if self.events == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.events - 1) as f64;
        let lo_rank = pos.floor() as u64;
        let hi_rank = pos.ceil() as u64;
        let lo = self.value_at_rank(lo_rank)?;
        if lo_rank == hi_rank {
            return Some(lo);
        }
        let hi = self.value_at_rank(hi_rank)?;
        let frac = pos - lo_rank as f64;
        Some(lo * (1.0 - frac) + hi * frac)
    }

    /// Fraction of events with size ≤ `x` (the empirical CDF at `x`).
    pub fn size_cdf_at(&self, x: f64) -> Option<f64> {
        if self.events == 0 {
            return None;
        }
        let below: u64 = self
            .size_counts
            .iter()
            .take_while(|(&size, _)| f64::from(size) <= x)
            .map(|(_, &n)| n)
            .sum();
        Some(below as f64 / self.events as f64)
    }

    fn value_at_rank(&self, rank: u64) -> Option<f64> {
        let mut seen = 0u64;
        for (&size, &count) in &self.size_counts {
            seen += count;
            if rank < seen {
                return Some(f64::from(size));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_analysis::{quantile, Cdf};
    use ebs_core::ids::{QpId, VdId};
    use ebs_core::io::Op;

    fn events() -> Vec<IoEvent> {
        // Skewed on purpose: vd 0 carries most of the bytes, and traffic
        // bunches into the first tick.
        let sizes = [4096u32, 8192, 4096, 65536, 4096, 16384, 8192, 4096];
        sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| IoEvent {
                t_us: if i < 6 { 100 + i as u64 } else { 2_000_000 },
                vd: VdId(if i == 3 { 1 } else { 0 }),
                qp: QpId(0),
                op: Op::Read,
                size,
                offset: 0,
            })
            .collect()
    }

    fn grid() -> TickSpec {
        TickSpec::new(1.0, 4)
    }

    #[test]
    fn folding_in_chunks_equals_folding_at_once() {
        let evs = events();
        let mut whole = StreamSummary::new(2, grid());
        whole.fold_chunk(&evs).unwrap();
        let mut parts = StreamSummary::new(2, grid());
        for chunk in evs.chunks(3) {
            parts.fold_chunk(chunk).unwrap();
        }
        assert_eq!(whole.vd_bytes(), parts.vd_bytes());
        assert_eq!(whole.tick_bytes(), parts.tick_bytes());
        assert_eq!(whole.events(), parts.events());
        assert_eq!(whole.size_quantile(0.5), parts.size_quantile(0.5));
    }

    #[test]
    fn matches_batch_analysis_on_materialized_events() {
        let evs = events();
        let mut s = StreamSummary::new(2, grid());
        s.fold_chunk(&evs).unwrap();

        let mut vd_bytes = vec![0.0f64; 2];
        let mut tick_bytes = vec![0.0f64; 4];
        let sizes: Vec<f64> = evs.iter().map(|e| f64::from(e.size)).collect();
        for e in &evs {
            vd_bytes[e.vd.0 as usize] += f64::from(e.size);
            tick_bytes[grid().tick_of_us(e.t_us) as usize] += f64::from(e.size);
        }
        assert_eq!(s.ccr(0.8), ccr(&vd_bytes, 0.8));
        assert_eq!(s.p2a(), p2a(&tick_bytes));
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.size_quantile(q), quantile(&sizes, q), "q={q}");
        }
        let cdf = Cdf::new(&sizes);
        for x in [0.0, 4096.0, 8192.0, 9000.0, 65536.0, 1e9] {
            assert_eq!(s.size_cdf_at(x), cdf.at(x), "x={x}");
        }
    }

    #[test]
    fn out_of_range_vd_is_corrupt_store() {
        let mut s = StreamSummary::new(1, grid());
        let mut evs = events();
        evs[0].vd = VdId(7);
        assert!(matches!(s.fold_chunk(&evs), Err(EbsError::CorruptStore(_))));
    }

    #[test]
    fn empty_summary_yields_none_everywhere() {
        let s = StreamSummary::new(4, grid());
        assert_eq!(s.ccr(0.8), None);
        assert_eq!(s.size_quantile(0.5), None);
        assert_eq!(s.size_cdf_at(4096.0), None);
    }
}
