//! Streaming aggregation over event chunks: the paper's headline
//! skewness statistics (CCR, P2A, size quantiles) computed one chunk at a
//! time, so a multi-gigabyte trace never has to materialize as a single
//! `Vec<IoEvent>`.
//!
//! The summary keeps O(vd_count + ticks + distinct sizes) state — per-VD
//! byte totals feed [`ebs_analysis::ccr`], per-tick byte totals feed
//! [`ebs_analysis::p2a`], and a size histogram answers quantiles with the
//! same linear-interpolation convention as [`ebs_analysis::quantile`].
//!
//! Two ingestion paths produce bit-identical summaries: the row-major
//! [`fold_chunk`](StreamSummary::fold_chunk) reference loop, and the
//! column-at-a-time [`fold_columns`](StreamSummary::fold_columns) hot
//! path, which runs the [`ebs_analysis::batch`] kernels directly on a v2
//! chunk's decoded columns (per-VD partials over the chunk dictionary,
//! run-batched tick accumulation over the sorted timestamp column). The
//! two agree exactly because every weight is an integer-valued `f64`
//! below 2^53, where addition is exact and therefore associative.
//! [`fold_store`] drives either path over a whole container, reusing one
//! payload buffer and one column scratch — steady-state replay does zero
//! allocation per chunk.

use std::collections::BTreeMap;
use std::io::Read;

use ebs_analysis::batch;
use ebs_analysis::{ccr, p2a};
use ebs_core::error::EbsError;
use ebs_core::io::IoEvent;
use ebs_core::time::TickSpec;

use crate::columns::{decode_events_v1, decode_events_v2_into, EventColumns, EventScratch};
use crate::format::kind;
use crate::reader::{ChunkReader, EndSummary};

/// Incremental trace summary, fed by [`fold_chunk`](Self::fold_chunk) or
/// [`fold_columns`](Self::fold_columns).
#[derive(Clone, Debug)]
pub struct StreamSummary {
    ticks: TickSpec,
    vd_bytes: Vec<f64>,
    tick_bytes: Vec<f64>,
    size_counts: BTreeMap<u32, u64>,
    events: u64,
    bytes: u64,
    /// Per-dictionary-slot partial sums, reused across chunks.
    dict_partials: Vec<f64>,
}

impl StreamSummary {
    /// Empty summary for a fleet of `vd_count` disks over the `ticks` grid.
    pub fn new(vd_count: usize, ticks: TickSpec) -> Self {
        Self {
            ticks,
            vd_bytes: vec![0.0; vd_count],
            tick_bytes: vec![0.0; ticks.ticks as usize],
            size_counts: BTreeMap::new(),
            events: 0,
            bytes: 0,
            dict_partials: Vec::new(),
        }
    }

    /// Absorb one decoded chunk of row-major events (the reference path;
    /// v1 stores and materialized traces come through here).
    ///
    /// A `vd` index outside the fleet is [`EbsError::CorruptStore`] — the
    /// summary is fed from disk, so out-of-range ids mean a damaged or
    /// mismatched file, not a programming error.
    pub fn fold_chunk(&mut self, events: &[IoEvent]) -> Result<(), EbsError> {
        for ev in events {
            let vd = ev.vd.0 as usize;
            let size = f64::from(ev.size);
            let fleet_size = self.vd_bytes.len();
            *self.vd_bytes.get_mut(vd).ok_or_else(|| {
                EbsError::corrupt_store(format!(
                    "event names vd {vd} but the fleet has {fleet_size} disks"
                ))
            })? += size;
            // `tick_of_us` clamps to the grid, so this lookup cannot miss on
            // any input; the typed error is the totality fallback.
            let tick = self.ticks.tick_of_us(ev.t_us) as usize;
            *self.tick_bytes.get_mut(tick).ok_or_else(|| {
                EbsError::corrupt_store(format!("tick {tick} outside the summary grid"))
            })? += size;
            *self.size_counts.entry(ev.size).or_insert(0) += 1;
            self.events += 1;
            self.bytes += u64::from(ev.size);
        }
        Ok(())
    }

    /// Absorb one decoded v2 chunk column-at-a-time: per-VD byte sums go
    /// through chunk-local dictionary partials
    /// ([`ebs_analysis::batch::keyed_sums`] + `scatter_add`), per-tick
    /// sums through the run-batched [`ebs_analysis::batch::tick_sums`],
    /// and the size histogram through run-coalesced
    /// [`ebs_analysis::batch::count_values`]. Produces results
    /// bit-identical to [`fold_chunk`](Self::fold_chunk) on the same
    /// events, with no per-event map lookups and no allocation once the
    /// partial buffer has grown to the largest chunk dictionary.
    pub fn fold_columns(&mut self, cols: &EventColumns<'_>) -> Result<(), EbsError> {
        let n = cols.len();
        if cols.vd_idx.len() != n || cols.size.len() != n {
            return Err(EbsError::corrupt_store(
                "event columns have mismatched lengths".to_string(),
            ));
        }
        self.dict_partials.clear();
        self.dict_partials.resize(cols.dict.len(), 0.0);
        if !batch::keyed_sums(cols.vd_idx, cols.size, &mut self.dict_partials) {
            return Err(EbsError::corrupt_store(
                "vd index column points outside the chunk dictionary".to_string(),
            ));
        }
        if !batch::scatter_add(&mut self.vd_bytes, cols.dict, &self.dict_partials) {
            let fleet_size = self.vd_bytes.len();
            return Err(EbsError::corrupt_store(format!(
                "chunk dictionary names a vd outside the {fleet_size}-disk fleet"
            )));
        }
        if !batch::tick_sums(self.ticks, cols.t_us, cols.size, &mut self.tick_bytes) {
            return Err(EbsError::corrupt_store(
                "tick column outside the summary grid".to_string(),
            ));
        }
        if !batch::count_values(cols.size, &mut self.size_counts) {
            return Err(EbsError::corrupt_store(
                "size column value does not fit in u32".to_string(),
            ));
        }
        self.events += n as u64;
        self.bytes += cols.size.iter().sum::<u64>();
        Ok(())
    }

    /// Merge another summary into this one (per-shard partials folding
    /// into a fleet total). Exact and order-independent: every
    /// accumulator is an integer-valued `f64` far below 2^53, so the
    /// elementwise adds are associative and the merged summary is
    /// bit-identical to folding all the events into one summary in any
    /// order — which is what makes replayed analyses invariant to the
    /// shard count. Mismatched grids are [`EbsError::CorruptStore`]:
    /// shard summaries come from disk, so a shape clash means a damaged
    /// or mismatched shard set.
    pub fn merge(&mut self, other: &StreamSummary) -> Result<(), EbsError> {
        if self.vd_bytes.len() != other.vd_bytes.len()
            || self.tick_bytes.len() != other.tick_bytes.len()
        {
            return Err(EbsError::corrupt_store(format!(
                "cannot merge a {}-disk/{}-tick summary into a {}-disk/{}-tick one",
                other.vd_bytes.len(),
                other.tick_bytes.len(),
                self.vd_bytes.len(),
                self.tick_bytes.len(),
            )));
        }
        for (dst, src) in self.vd_bytes.iter_mut().zip(&other.vd_bytes) {
            *dst += src;
        }
        for (dst, src) in self.tick_bytes.iter_mut().zip(&other.tick_bytes) {
            *dst += src;
        }
        for (&size, &count) in &other.size_counts {
            *self.size_counts.entry(size).or_insert(0) += count;
        }
        self.events += other.events;
        self.bytes += other.bytes;
        Ok(())
    }

    /// Events absorbed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Total bytes moved by absorbed events.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Per-VD byte contributions (index = vd id).
    pub fn vd_bytes(&self) -> &[f64] {
        &self.vd_bytes
    }

    /// Per-tick byte series over the configured grid.
    pub fn tick_bytes(&self) -> &[f64] {
        &self.tick_bytes
    }

    /// Capacity contribution ratio: the share of traffic carried by the
    /// top `frac` of disks (paper §3.1). `None` while no bytes absorbed.
    pub fn ccr(&self, frac: f64) -> Option<f64> {
        ccr(&self.vd_bytes, frac)
    }

    /// Peak-to-average ratio of the per-tick byte series (paper §3.2).
    pub fn p2a(&self) -> Option<f64> {
        p2a(&self.tick_bytes)
    }

    /// The `q`-quantile of request sizes, linear-interpolated between order
    /// statistics exactly like [`ebs_analysis::quantile`] — but computed
    /// from the weighted histogram, without expanding one value per event.
    pub fn size_quantile(&self, q: f64) -> Option<f64> {
        batch::weighted_quantile(&self.sorted_sizes(), self.events, q)
    }

    /// Fraction of events with size ≤ `x` (the empirical CDF at `x`).
    pub fn size_cdf_at(&self, x: f64) -> Option<f64> {
        batch::weighted_cdf_at(&self.sorted_sizes(), self.events, x)
    }

    /// The histogram as sorted pairs (the `BTreeMap` already iterates in
    /// key order, so this is a plain collect).
    fn sorted_sizes(&self) -> Vec<(u32, u64)> {
        self.size_counts.iter().map(|(&s, &c)| (s, c)).collect()
    }
}

/// Stream every EVENTS chunk of `reader` into `summary`, dispatching on
/// the container version: v1 chunks decode through the legacy row path
/// into [`StreamSummary::fold_chunk`], v2 chunks through the batched
/// column kernels into [`StreamSummary::fold_columns`] — one payload
/// buffer and one [`EventScratch`] reused throughout, so the v2
/// steady state allocates nothing per chunk. Cross-checks the END-chunk
/// event total and returns it.
pub fn fold_store<R: Read>(
    mut reader: ChunkReader<R>,
    summary: &mut StreamSummary,
) -> Result<EndSummary, EbsError> {
    let version = reader.version();
    let mut payload = Vec::new();
    let mut scratch = EventScratch::new();
    let mut seen = 0u64;
    while let Some(chunk_kind) = reader.next_chunk_into(&mut payload)? {
        if chunk_kind != kind::EVENTS {
            continue;
        }
        if version == 1 {
            let events = decode_events_v1(&payload)?;
            summary.fold_chunk(&events)?;
            seen += events.len() as u64;
        } else {
            decode_events_v2_into(&payload, &mut scratch)?;
            let cols = scratch.columns();
            summary.fold_columns(&cols)?;
            seen += cols.len() as u64;
        }
    }
    let end = reader.end_summary().unwrap_or_default();
    if end.events != seen {
        return Err(EbsError::truncated(format!(
            "end chunk pins {} events but the stream held {seen}",
            end.events
        )));
    }
    Ok(end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columns::encode_events_v2;
    use crate::writer::StoreWriter;
    use ebs_analysis::{quantile, Cdf};
    use ebs_core::ids::{QpId, VdId};
    use ebs_core::io::Op;

    fn events() -> Vec<IoEvent> {
        // Skewed on purpose: vd 0 carries most of the bytes, and traffic
        // bunches into the first tick.
        let sizes = [4096u32, 8192, 4096, 65536, 4096, 16384, 8192, 4096];
        sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| IoEvent {
                t_us: if i < 6 { 100 + i as u64 } else { 2_000_000 },
                vd: VdId(if i == 3 { 1 } else { 0 }),
                qp: QpId(0),
                op: Op::Read,
                size,
                offset: 0,
            })
            .collect()
    }

    fn grid() -> TickSpec {
        TickSpec::new(1.0, 4)
    }

    #[test]
    fn folding_in_chunks_equals_folding_at_once() {
        let evs = events();
        let mut whole = StreamSummary::new(2, grid());
        whole.fold_chunk(&evs).unwrap();
        let mut parts = StreamSummary::new(2, grid());
        for chunk in evs.chunks(3) {
            parts.fold_chunk(chunk).unwrap();
        }
        assert_eq!(whole.vd_bytes(), parts.vd_bytes());
        assert_eq!(whole.tick_bytes(), parts.tick_bytes());
        assert_eq!(whole.events(), parts.events());
        assert_eq!(whole.size_quantile(0.5), parts.size_quantile(0.5));
    }

    #[test]
    fn column_fold_is_bit_identical_to_row_fold() {
        let evs = events();
        let mut rows = StreamSummary::new(2, grid());
        let mut cols_summary = StreamSummary::new(2, grid());
        let mut scratch = EventScratch::new();
        let mut dec = EventScratch::new();
        for chunk in evs.chunks(3) {
            rows.fold_chunk(chunk).unwrap();
            let (payload, _) = encode_events_v2(chunk, &mut scratch).unwrap();
            decode_events_v2_into(&payload, &mut dec).unwrap();
            cols_summary.fold_columns(&dec.columns()).unwrap();
        }
        assert_eq!(rows.vd_bytes(), cols_summary.vd_bytes());
        assert_eq!(rows.tick_bytes(), cols_summary.tick_bytes());
        assert_eq!(rows.events(), cols_summary.events());
        assert_eq!(rows.bytes(), cols_summary.bytes());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(rows.size_quantile(q), cols_summary.size_quantile(q));
        }
        assert_eq!(rows.size_cdf_at(8192.0), cols_summary.size_cdf_at(8192.0));
    }

    #[test]
    fn fold_store_streams_a_container_end_to_end() {
        let evs = events();
        let mut w = StoreWriter::new(Vec::new()).unwrap();
        w.write_events_chunked(&evs, 3).unwrap();
        let bytes = w.finish().unwrap();
        let mut streamed = StreamSummary::new(2, grid());
        let end = fold_store(ChunkReader::new(bytes.as_slice()).unwrap(), &mut streamed).unwrap();
        assert_eq!(end.events, evs.len() as u64);
        let mut direct = StreamSummary::new(2, grid());
        direct.fold_chunk(&evs).unwrap();
        assert_eq!(streamed.vd_bytes(), direct.vd_bytes());
        assert_eq!(streamed.tick_bytes(), direct.tick_bytes());
        assert_eq!(streamed.size_quantile(0.5), direct.size_quantile(0.5));
    }

    #[test]
    fn matches_batch_analysis_on_materialized_events() {
        let evs = events();
        let mut s = StreamSummary::new(2, grid());
        s.fold_chunk(&evs).unwrap();

        let mut vd_bytes = vec![0.0f64; 2];
        let mut tick_bytes = vec![0.0f64; 4];
        let sizes: Vec<f64> = evs.iter().map(|e| f64::from(e.size)).collect();
        for e in &evs {
            vd_bytes[e.vd.0 as usize] += f64::from(e.size);
            tick_bytes[grid().tick_of_us(e.t_us) as usize] += f64::from(e.size);
        }
        assert_eq!(s.ccr(0.8), ccr(&vd_bytes, 0.8));
        assert_eq!(s.p2a(), p2a(&tick_bytes));
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.size_quantile(q), quantile(&sizes, q), "q={q}");
        }
        let cdf = Cdf::new(&sizes);
        for x in [0.0, 4096.0, 8192.0, 9000.0, 65536.0, 1e9] {
            assert_eq!(s.size_cdf_at(x), cdf.at(x), "x={x}");
        }
    }

    #[test]
    fn merging_shard_partials_equals_folding_everything_into_one() {
        let evs = events();
        let mut whole = StreamSummary::new(2, grid());
        whole.fold_chunk(&evs).unwrap();
        // Split the events across "shards", fold each independently, merge.
        let mut merged = StreamSummary::new(2, grid());
        for shard in evs.chunks(3) {
            let mut partial = StreamSummary::new(2, grid());
            partial.fold_chunk(shard).unwrap();
            merged.merge(&partial).unwrap();
        }
        assert_eq!(whole.vd_bytes(), merged.vd_bytes());
        assert_eq!(whole.tick_bytes(), merged.tick_bytes());
        assert_eq!(whole.events(), merged.events());
        assert_eq!(whole.bytes(), merged.bytes());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(whole.size_quantile(q), merged.size_quantile(q));
        }
        assert_eq!(whole.ccr(0.8), merged.ccr(0.8));
        assert_eq!(whole.p2a(), merged.p2a());
    }

    #[test]
    fn merge_rejects_mismatched_grids() {
        let mut a = StreamSummary::new(2, grid());
        let b = StreamSummary::new(3, grid());
        assert!(matches!(a.merge(&b), Err(EbsError::CorruptStore(_))));
        let c = StreamSummary::new(2, TickSpec::new(1.0, 9));
        assert!(matches!(a.merge(&c), Err(EbsError::CorruptStore(_))));
    }

    #[test]
    fn out_of_range_vd_is_corrupt_store() {
        let mut s = StreamSummary::new(1, grid());
        let mut evs = events();
        evs[0].vd = VdId(7);
        assert!(matches!(s.fold_chunk(&evs), Err(EbsError::CorruptStore(_))));
        // The column path rejects the same fleet mismatch at scatter time.
        let mut scratch = EventScratch::new();
        let mut dec = EventScratch::new();
        let (payload, _) = encode_events_v2(&evs, &mut scratch).unwrap();
        decode_events_v2_into(&payload, &mut dec).unwrap();
        let mut s = StreamSummary::new(1, grid());
        assert!(matches!(
            s.fold_columns(&dec.columns()),
            Err(EbsError::CorruptStore(_))
        ));
    }

    #[test]
    fn empty_summary_yields_none_everywhere() {
        let s = StreamSummary::new(4, grid());
        assert_eq!(s.ccr(0.8), None);
        assert_eq!(s.size_quantile(0.5), None);
        assert_eq!(s.size_cdf_at(4096.0), None);
    }
}
