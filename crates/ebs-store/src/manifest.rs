//! Shard-set manifest: the on-disk description of a trace split across
//! shard files (DESIGN.md §15).
//!
//! A sharded trace is a directory of independent containers: one
//! `manifest.ebs` plus one `shard-NNNN.ebs` per shard. Each shard owns a
//! contiguous, disjoint VD range and holds only that range's EVENTS
//! chunks, so shards generate, persist, and replay with zero cross-shard
//! coordination. The manifest carries what a replayer needs *before*
//! opening any shard — fleet size, tick grid, the opaque generation
//! config, and one [`ShardEntry`] per file — so a streaming analysis can
//! size its accumulators and fan shards out to workers without rebuilding
//! the fleet.
//!
//! Both the manifest payload and the per-shard [`ShardMeta`] chunk are
//! ordinary sealed chunks inside ordinary containers, which buys them the
//! existing truncation/checksum/END-total defenses for free. Decoding is
//! total: a hostile manifest yields a typed [`EbsError`], never a panic,
//! and structural invariants (shard ranges must partition `[0, vd_count)`
//! in order, file names must be bare names, not paths) are enforced at
//! decode time so a tampered manifest cannot make a replayer read outside
//! its directory or double-count a VD.

use std::io::Read;

use ebs_core::error::EbsError;
use ebs_core::time::TickSpec;

use crate::bytes::{ByteReader, ByteWriter};
use crate::format::kind;
use crate::reader::ChunkReader;
use crate::writer::StoreWriter;

/// Canonical file name of the manifest container inside a shard directory.
pub const MANIFEST_FILE: &str = "manifest.ebs";

/// Canonical file name for shard `index` (`shard-0000.ebs`, …).
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:04}.ebs")
}

/// One shard file's entry in the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    /// Bare file name of the shard container, relative to the manifest.
    pub name: String,
    /// First VD id owned by the shard (inclusive).
    pub vd_lo: u64,
    /// One past the last VD id owned by the shard.
    pub vd_hi: u64,
    /// Events stored in the shard (cross-checked against its END chunk).
    pub events: u64,
    /// Total bytes moved by the shard's events.
    pub bytes: u64,
}

/// The decoded manifest of a sharded trace.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardManifest {
    /// Number of VDs in the fleet; shard ranges partition `[0, vd_count)`.
    pub vd_count: u64,
    /// Storage-domain tick length in seconds (bit-exact f64 transport).
    pub tick_secs: f64,
    /// Number of ticks in the observation window.
    pub ticks: u32,
    /// Opaque generation-config payload (encoded by `ebs-workload`, same
    /// bytes as a CONFIG chunk), so a sharded trace can be re-validated
    /// against the config that produced it.
    pub config: Vec<u8>,
    /// Per-shard entries, in VD-range order.
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// The tick grid the trace was generated over.
    pub fn tick_spec(&self) -> TickSpec {
        TickSpec::new(self.tick_secs, self.ticks)
    }

    /// Total events across all shards.
    pub fn total_events(&self) -> u64 {
        self.shards.iter().map(|s| s.events).sum()
    }

    /// Total traffic bytes across all shards.
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes).sum()
    }

    /// Encode the manifest chunk payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_varint(self.vd_count);
        w.put_f64_bits(self.tick_secs);
        w.put_varint(u64::from(self.ticks));
        w.put_varint(self.config.len() as u64);
        w.put_bytes(&self.config);
        w.put_varint(self.shards.len() as u64);
        for shard in &self.shards {
            w.put_varint(shard.name.len() as u64);
            w.put_bytes(shard.name.as_bytes());
            w.put_varint(shard.vd_lo);
            w.put_varint(shard.vd_hi);
            w.put_varint(shard.events);
            w.put_varint(shard.bytes);
        }
        w.into_bytes()
    }

    /// Decode and validate a manifest chunk payload.
    pub fn decode(payload: &[u8]) -> Result<Self, EbsError> {
        let mut r = ByteReader::new(payload, "shard manifest");
        let vd_count = r.get_varint()?;
        let tick_secs = r.get_f64_bits()?;
        let ticks = r.get_varint_u32()?;
        let config_len = r.get_varint()?;
        let config_len = usize::try_from(config_len)
            .ok()
            .filter(|&n| n <= r.remaining())
            .ok_or_else(|| {
                EbsError::truncated(format!(
                    "shard manifest declares a {config_len}-byte config but only {} bytes remain",
                    r.remaining()
                ))
            })?;
        let config = r.get_bytes(config_len)?.to_vec();
        let shard_count = r.get_varint()?;
        // Each entry costs at least 5 bytes (empty name is rejected below),
        // so the declared count is bounded by the bytes actually present.
        let shard_count = r.check_count(shard_count, 5)?;
        let mut shards = Vec::with_capacity(shard_count);
        let mut next_lo = 0u64;
        for i in 0..shard_count {
            let name_len = r.get_varint()?;
            let name_len = usize::try_from(name_len)
                .ok()
                .filter(|&n| n <= r.remaining())
                .ok_or_else(|| {
                    EbsError::truncated(format!("shard {i} declares an oversized file name"))
                })?;
            let name_bytes = r.get_bytes(name_len)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| {
                    EbsError::corrupt_store(format!("shard {i} file name is not valid UTF-8"))
                })?
                .to_string();
            if name.is_empty() || name.contains(['/', '\\']) || name == "." || name == ".." {
                return Err(EbsError::corrupt_store(format!(
                    "shard {i} file name {name:?} is not a bare file name"
                )));
            }
            let vd_lo = r.get_varint()?;
            let vd_hi = r.get_varint()?;
            if vd_lo != next_lo || vd_hi <= vd_lo || vd_hi > vd_count {
                return Err(EbsError::corrupt_store(format!(
                    "shard {i} owns vds [{vd_lo}, {vd_hi}) but the shard ranges must \
                     partition [0, {vd_count}) in order (expected lo {next_lo})"
                )));
            }
            next_lo = vd_hi;
            let events = r.get_varint()?;
            let bytes = r.get_varint()?;
            shards.push(ShardEntry {
                name,
                vd_lo,
                vd_hi,
                events,
                bytes,
            });
        }
        if next_lo != vd_count {
            return Err(EbsError::corrupt_store(format!(
                "shard ranges cover [0, {next_lo}) but the fleet has {vd_count} disks"
            )));
        }
        r.expect_end()?;
        Ok(Self {
            vd_count,
            tick_secs,
            ticks,
            config,
            shards,
        })
    }

    /// Write the manifest as its own sealed container.
    pub fn save<W: std::io::Write>(&self, out: W) -> Result<W, EbsError> {
        let mut writer = StoreWriter::new(out)?;
        writer.write_chunk(kind::MANIFEST, &self.encode())?;
        writer.finish()
    }

    /// Load a manifest container (the inverse of [`save`](Self::save)).
    pub fn load<R: Read>(input: R) -> Result<Self, EbsError> {
        let mut reader = ChunkReader::new(input)?;
        let mut payload = Vec::new();
        let mut found = None;
        while let Some(chunk_kind) = reader.next_chunk_into(&mut payload)? {
            if chunk_kind == kind::MANIFEST {
                if found.is_some() {
                    return Err(EbsError::corrupt_store(
                        "manifest container holds more than one MANIFEST chunk".to_string(),
                    ));
                }
                found = Some(Self::decode(&payload)?);
            }
        }
        found.ok_or_else(|| {
            EbsError::corrupt_store("manifest container holds no MANIFEST chunk".to_string())
        })
    }
}

/// Per-shard self-description, stored as the first chunk of each shard
/// file so a shard can be validated against the manifest entry that names
/// it (wrong-file swaps show up as a range mismatch, not silent
/// double-counting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardMeta {
    /// This shard's position in the shard set.
    pub shard_index: u64,
    /// Total number of shards in the set.
    pub shard_count: u64,
    /// First VD id owned by the shard (inclusive).
    pub vd_lo: u64,
    /// One past the last VD id owned by the shard.
    pub vd_hi: u64,
}

impl ShardMeta {
    /// Encode the SHARD_META chunk payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_varint(self.shard_index);
        w.put_varint(self.shard_count);
        w.put_varint(self.vd_lo);
        w.put_varint(self.vd_hi);
        w.into_bytes()
    }

    /// Decode and validate a SHARD_META chunk payload.
    pub fn decode(payload: &[u8]) -> Result<Self, EbsError> {
        let mut r = ByteReader::new(payload, "shard meta");
        let shard_index = r.get_varint()?;
        let shard_count = r.get_varint()?;
        let vd_lo = r.get_varint()?;
        let vd_hi = r.get_varint()?;
        r.expect_end()?;
        if shard_index >= shard_count || vd_hi <= vd_lo {
            return Err(EbsError::corrupt_store(format!(
                "shard meta claims shard {shard_index}/{shard_count} owning \
                 vds [{vd_lo}, {vd_hi})"
            )));
        }
        Ok(Self {
            shard_index,
            shard_count,
            vd_lo,
            vd_hi,
        })
    }

    /// Whether this meta matches the manifest `entry` at `index`.
    pub fn matches(&self, index: usize, entry: &ShardEntry) -> bool {
        self.shard_index == index as u64 && self.vd_lo == entry.vd_lo && self.vd_hi == entry.vd_hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> ShardManifest {
        ShardManifest {
            vd_count: 10,
            tick_secs: 10.0,
            ticks: 360,
            config: vec![1, 2, 3, 4],
            shards: vec![
                ShardEntry {
                    name: shard_file_name(0),
                    vd_lo: 0,
                    vd_hi: 4,
                    events: 100,
                    bytes: 4096,
                },
                ShardEntry {
                    name: shard_file_name(1),
                    vd_lo: 4,
                    vd_hi: 10,
                    events: 200,
                    bytes: 8192,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = manifest();
        let decoded = ShardManifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(decoded.total_events(), 300);
        assert_eq!(decoded.total_bytes(), 12288);
        assert_eq!(decoded.tick_spec().ticks, 360);
    }

    #[test]
    fn save_load_roundtrip_through_a_container() {
        let m = manifest();
        let bytes = m.save(Vec::new()).unwrap();
        let loaded = ShardManifest::load(bytes.as_slice()).unwrap();
        assert_eq!(loaded, m);
    }

    #[test]
    fn rejects_gapped_overlapping_or_short_ranges() {
        let mut gapped = manifest();
        gapped.shards[1].vd_lo = 5;
        assert!(ShardManifest::decode(&gapped.encode()).is_err());
        let mut overlapping = manifest();
        overlapping.shards[1].vd_lo = 3;
        assert!(ShardManifest::decode(&overlapping.encode()).is_err());
        let mut short = manifest();
        short.shards[1].vd_hi = 9;
        assert!(ShardManifest::decode(&short.encode()).is_err());
        let mut empty = manifest();
        empty.shards[0].vd_hi = 0;
        assert!(ShardManifest::decode(&empty.encode()).is_err());
    }

    #[test]
    fn rejects_path_traversal_names() {
        for bad in ["", "a/b.ebs", "..", "c:\\x.ebs"] {
            let mut m = manifest();
            m.shards[0].name = bad.to_string();
            assert!(
                ShardManifest::decode(&m.encode()).is_err(),
                "name {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn truncation_of_every_prefix_is_detected() {
        let payload = manifest().encode();
        for cut in 0..payload.len() {
            assert!(
                ShardManifest::decode(&payload[..cut]).is_err(),
                "prefix of {cut} bytes decoded cleanly"
            );
        }
    }

    #[test]
    fn shard_meta_roundtrip_and_matching() {
        let meta = ShardMeta {
            shard_index: 1,
            shard_count: 2,
            vd_lo: 4,
            vd_hi: 10,
        };
        let decoded = ShardMeta::decode(&meta.encode()).unwrap();
        assert_eq!(decoded, meta);
        let m = manifest();
        assert!(meta.matches(1, &m.shards[1]));
        assert!(!meta.matches(0, &m.shards[0]));
        assert!(ShardMeta::decode(&[]).is_err());
        let bad = ShardMeta {
            shard_index: 2,
            shard_count: 2,
            vd_lo: 0,
            vd_hi: 1,
        };
        assert!(ShardMeta::decode(&bad.encode()).is_err());
    }
}
