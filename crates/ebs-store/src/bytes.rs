//! Payload-level primitives: LEB128 varints, fixed-width little-endian
//! scalars, and bit-exact `f64` transport, over plain byte buffers.
//!
//! Every multi-byte integer that can be small in practice (timestamps
//! deltas, ids, sizes, counts) travels as an unsigned LEB128 varint; floats
//! travel as their raw IEEE-754 bits so a save→load→save cycle is
//! byte-identical even for payloads like `-0.0` or values that do not
//! round-trip through decimal text. The reader is bounds-checked
//! everywhere and returns typed [`EbsError`]s — hostile input can make it
//! fail, never panic.

use ebs_core::error::EbsError;

/// Append-only payload encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a fixed-width little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an unsigned LEB128 varint (1–10 bytes).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Append an `f64` as its raw IEEE-754 bits (8 bytes, little-endian).
    pub fn put_f64_bits(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Append raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked payload decoder over a borrowed byte slice.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Context string used in error messages ("events chunk 3" …).
    what: &'a str,
}

impl<'a> ByteReader<'a> {
    /// Decode `buf`, labelling errors with `what`.
    pub fn new(buf: &'a [u8], what: &'a str) -> Self {
        Self { buf, pos: 0, what }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error for a read past the end of the payload.
    fn short(&self, need: usize) -> EbsError {
        EbsError::truncated(format!(
            "{}: need {need} more bytes at offset {}, payload has {}",
            self.what,
            self.pos,
            self.buf.len()
        ))
    }

    /// Read one raw byte.
    pub fn get_u8(&mut self) -> Result<u8, EbsError> {
        let b = *self.buf.get(self.pos).ok_or_else(|| self.short(1))?;
        self.pos += 1;
        Ok(b)
    }

    /// Read the next `N` bytes into a fixed array (the panic-free spelling
    /// of `slice.try_into()` — offset arithmetic is checked too).
    fn get_array<const N: usize>(&mut self) -> Result<[u8; N], EbsError> {
        let end = self.pos.checked_add(N).ok_or_else(|| self.short(N))?;
        let bytes = self.buf.get(self.pos..end).ok_or_else(|| self.short(N))?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        self.pos = end;
        Ok(out)
    }

    /// Read a fixed-width little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, EbsError> {
        Ok(u32::from_le_bytes(self.get_array::<4>()?))
    }

    /// Read an unsigned LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, EbsError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(EbsError::corrupt_store(format!(
                    "{}: varint overflows u64 at offset {}",
                    self.what, self.pos
                )));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(EbsError::corrupt_store(format!(
                    "{}: varint longer than 10 bytes at offset {}",
                    self.what, self.pos
                )));
            }
        }
    }

    /// Read a varint expected to fit in `u32` (ids, counts, sizes).
    pub fn get_varint_u32(&mut self) -> Result<u32, EbsError> {
        let v = self.get_varint()?;
        u32::try_from(v).map_err(|_| {
            EbsError::corrupt_store(format!("{}: value {v} does not fit in u32", self.what))
        })
    }

    /// Borrow everything left to read without consuming it. Batch decoders
    /// use this to run masked wide loads against one bounds-checked window,
    /// then account for what they consumed with [`ByteReader::skip`].
    pub fn rest(&self) -> &'a [u8] {
        self.buf.get(self.pos..).unwrap_or(&[])
    }

    /// Consume `len` bytes previously inspected through [`ByteReader::rest`].
    pub fn skip(&mut self, len: usize) -> Result<(), EbsError> {
        let end = self.pos.checked_add(len).ok_or_else(|| self.short(len))?;
        if end > self.buf.len() {
            return Err(self.short(len));
        }
        self.pos = end;
        Ok(())
    }

    /// Borrow the next `len` raw bytes without copying.
    pub fn get_bytes(&mut self, len: usize) -> Result<&'a [u8], EbsError> {
        let end = self.pos.checked_add(len).ok_or_else(|| self.short(len))?;
        let bytes = self.buf.get(self.pos..end).ok_or_else(|| self.short(len))?;
        self.pos = end;
        Ok(bytes)
    }

    /// Read a bit-exact `f64`.
    pub fn get_f64_bits(&mut self) -> Result<f64, EbsError> {
        Ok(f64::from_bits(u64::from_le_bytes(self.get_array::<8>()?)))
    }

    /// Assert the payload is fully consumed (trailing garbage is corruption,
    /// not padding).
    pub fn expect_end(&self) -> Result<(), EbsError> {
        if self.remaining() != 0 {
            return Err(EbsError::corrupt_store(format!(
                "{}: {} trailing bytes after the last field",
                self.what,
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Validate a declared element count against the bytes actually
    /// available, given a minimum encoded size per element. This caps
    /// allocations on hostile input: a forged "4 billion events" header in
    /// a 100-byte chunk fails here instead of in `Vec::with_capacity`.
    pub fn check_count(&self, count: u64, min_bytes_each: usize) -> Result<usize, EbsError> {
        let count = usize::try_from(count).map_err(|_| {
            EbsError::corrupt_store(format!("{}: count {count} overflows", self.what))
        })?;
        if count.saturating_mul(min_bytes_each) > self.remaining() {
            return Err(EbsError::corrupt_store(format!(
                "{}: declared {count} elements but only {} payload bytes remain",
                self.what,
                self.remaining()
            )));
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_across_widths() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_varint(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        for &v in &values {
            assert_eq!(r.get_varint().unwrap(), v);
        }
        r.expect_end().unwrap();
    }

    #[test]
    fn floats_are_bit_exact() {
        let values = [0.0, -0.0, 1.5, f64::MIN_POSITIVE, 1e300, f64::INFINITY];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_f64_bits(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "test");
        for &v in &values {
            assert_eq!(r.get_f64_bits().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_reads_return_typed_errors() {
        let mut w = ByteWriter::new();
        w.put_u32(7);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..2], "short");
        assert!(matches!(r.get_u32(), Err(EbsError::Truncated(_))));
        let mut r = ByteReader::new(&[], "empty");
        assert!(matches!(r.get_u8(), Err(EbsError::Truncated(_))));
    }

    #[test]
    fn overlong_varint_is_corruption_not_panic() {
        // 11 continuation bytes can never be a valid u64 varint.
        let bytes = [0x80u8; 11];
        let mut r = ByteReader::new(&bytes, "overlong");
        assert!(matches!(r.get_varint(), Err(EbsError::CorruptStore(_))));
        // 10 bytes whose top nibble overflows bit 64.
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        let mut r = ByteReader::new(&bytes, "overflow");
        assert!(matches!(r.get_varint(), Err(EbsError::CorruptStore(_))));
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        let bytes = [0u8; 16];
        let r = ByteReader::new(&bytes, "hostile");
        assert!(r.check_count(16, 1).is_ok());
        assert!(matches!(
            r.check_count(u64::MAX, 1),
            Err(EbsError::CorruptStore(_))
        ));
        assert!(matches!(
            r.check_count(17, 1),
            Err(EbsError::CorruptStore(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_flagged() {
        let bytes = [1u8, 2];
        let mut r = ByteReader::new(&bytes, "tail");
        r.get_u8().unwrap();
        assert!(matches!(r.expect_end(), Err(EbsError::CorruptStore(_))));
    }
}
