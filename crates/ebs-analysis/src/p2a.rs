//! Peak-to-Average ratio (P2A), the paper's temporal-skewness metric (§3.1).

/// P2A of a dense time series: `max / mean`. A flat series gives 1.0; a
/// series with one huge spike and long idle stretches gives very large
/// values (the paper reports 50 %ile VM-level read P2A above 30 000).
///
/// Returns `None` when the series is empty or carries no traffic (mean 0).
pub fn p2a(series: &[f64]) -> Option<f64> {
    if series.is_empty() {
        return None;
    }
    let sum: f64 = series.iter().sum();
    if sum <= 0.0 {
        return None;
    }
    let mean = sum / series.len() as f64;
    let max = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(max / mean)
}

/// P2A computed over coarser windows: the series is re-binned by summing
/// `window` consecutive samples before taking max/mean. Equivalent to
/// measuring P2A at a coarser aggregation granularity.
pub fn p2a_windowed(series: &[f64], window: usize) -> Option<f64> {
    if window == 0 {
        return None;
    }
    let binned: Vec<f64> = series.chunks(window).map(|c| c.iter().sum()).collect();
    p2a(&binned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_series_has_unit_p2a() {
        assert!((p2a(&[3.0, 3.0, 3.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_spike_scales_with_length() {
        // One spike of 10 over 10 slots: mean 1, max 10 → P2A 10.
        let mut v = vec![0.0; 9];
        v.push(10.0);
        assert!((p2a(&v).unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_or_zero_series_is_none() {
        assert_eq!(p2a(&[]), None);
        assert_eq!(p2a(&[0.0, 0.0]), None);
    }

    #[test]
    fn windowing_smooths_bursts() {
        // Alternating 0/2: fine-grain P2A = 2, window-2 P2A = 1.
        let v = [0.0, 2.0, 0.0, 2.0, 0.0, 2.0];
        assert!((p2a(&v).unwrap() - 2.0).abs() < 1e-12);
        assert!((p2a_windowed(&v, 2).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(p2a_windowed(&v, 0), None);
    }

    #[test]
    fn p2a_at_least_one_for_nonnegative_series() {
        let v = [0.5, 1.5, 1.0, 0.0, 2.0];
        assert!(p2a(&v).unwrap() >= 1.0);
    }
}
