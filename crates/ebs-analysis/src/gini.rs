//! Gini coefficient — a companion spatial-skewness score.
//!
//! The paper quantifies spatial skew with CCR at two fixed fractions; the
//! Gini coefficient summarises the whole Lorenz curve in one number
//! (0 = perfectly even, →1 = one entity carries everything), which makes
//! cross-level and cross-fleet comparisons easier. Used by downstream
//! analyses and the ablation harness.

/// Gini coefficient of non-negative contributions. `None` when the slice
/// is empty or the total is not positive.
pub fn gini(contributions: &[f64]) -> Option<f64> {
    if contributions.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = contributions.to_vec();
    let total: f64 = v.iter().sum();
    if total <= 0.0 {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("contributions must not be NaN"));
    let n = v.len() as f64;
    // G = (2·Σ i·x_i) / (n·Σ x_i) − (n+1)/n, with 1-based ranks over the
    // ascending sort.
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    Some((2.0 * weighted / (n * total) - (n + 1.0) / n).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_zero() {
        assert!((gini(&[3.0, 3.0, 3.0, 3.0]).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn single_hot_entity_approaches_one() {
        let mut v = vec![0.0; 99];
        v.push(100.0);
        let g = gini(&v).unwrap();
        assert!(g > 0.98, "got {g}");
    }

    #[test]
    fn known_value_two_entities() {
        // [1, 3]: Lorenz area gives G = 0.25.
        let g = gini(&[1.0, 3.0]).unwrap();
        assert!((g - 0.25).abs() < 1e-12, "got {g}");
    }

    #[test]
    fn invariant_to_scale_and_order() {
        let a = gini(&[5.0, 1.0, 3.0]).unwrap();
        let b = gini(&[10.0, 2.0, 6.0]).unwrap();
        let c = gini(&[1.0, 3.0, 5.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
        assert!((a - c).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(gini(&[]), None);
        assert_eq!(gini(&[0.0, 0.0]), None);
    }

    #[test]
    fn more_skew_more_gini() {
        let even = gini(&[4.0, 3.0, 3.0]).unwrap();
        let skewed = gini(&[8.0, 1.0, 1.0]).unwrap();
        assert!(skewed > even);
    }
}
