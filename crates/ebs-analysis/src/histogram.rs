//! Fixed-bin histograms (Figure 5(b) and similar).

/// A histogram over `[lo, hi)` with uniform bins; values outside the range
/// are clamped into the first/last bin so mass is never silently dropped.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// A histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Insert one observation.
    pub fn add(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        let bins = self.counts.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Insert many observations.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Lower edge of the range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Add `other`'s mass bin-by-bin. Because addition commutes, merging a
    /// set of histograms yields the same result in any order — the property
    /// the observability layer relies on when workers record locally and
    /// merge at the end.
    ///
    /// # Panics
    /// Panics if the two histograms have different ranges or bin counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "cannot merge histograms of different shape"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Fraction of mass in each bin (all zeros if no observations).
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// `(low, high)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (a, b) = self.bin_edges(i);
        (a + b) / 2.0
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.extend([0.1, 0.3, 0.3, 0.6, 0.9]);
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_clamps_to_edge_bins() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.extend([-5.0, 5.0, 1.0]);
        assert_eq!(h.counts(), &[1, 2]); // 1.0 == hi goes to last bin
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(-1.0, 1.0, 10);
        h.extend((0..100).map(|i| -1.0 + 0.02 * i as f64));
        let s: f64 = h.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_has_zero_fractions() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.fractions(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn edges_and_centers() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.bin_edges(0), (0.0, 0.25));
        assert_eq!(h.bin_center(3), 0.875);
    }

    #[test]
    fn merge_adds_counts_in_any_order() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        a.extend([0.1, 0.6]);
        let mut b = Histogram::new(0.0, 1.0, 4);
        b.extend([0.3, 0.6, 0.9]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counts(), ba.counts());
        assert_eq!(ab.counts(), &[1, 1, 2, 1]);
        assert_eq!(ab.total(), 5);
    }

    #[test]
    #[should_panic(expected = "different shape")]
    fn merge_rejects_mismatched_shapes() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        a.merge(&Histogram::new(0.0, 2.0, 4));
    }

    #[test]
    fn nan_is_ignored() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(f64::NAN);
        assert_eq!(h.total(), 0);
    }
}
