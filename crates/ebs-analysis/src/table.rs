//! Minimal aligned text-table rendering for the experiment harness — the
//! binaries print the same rows the paper's tables report.

use std::fmt::Write as _;

/// A simple text table with a header row and aligned columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: Option<String>,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            title: None,
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Attach a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Append one row; shorter rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len().max(row.len()), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render with space-aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "== {t} ==");
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = w - cell.chars().count();
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', pad));
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
            let rule: String = widths
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    let dash = "-".repeat(*w);
                    if i > 0 {
                        format!("  {dash}")
                    } else {
                        dash
                    }
                })
                .collect();
            let _ = writeln!(out, "{}", rule.trim_end());
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a fraction as a percentage with one decimal, paper style
/// (`0.754` → `"75.4"`).
pub fn pct(frac: f64) -> String {
    format!("{:.1}", frac * 100.0)
}

/// Format a pair of read/write values the way the paper's tables do:
/// `"75.4 / 42.6"`.
pub fn rw_pair(read: impl std::fmt::Display, write: impl std::fmt::Display) -> String {
    format!("{read} / {write}")
}

/// Format a float with sensible precision for table cells: large values get
/// one decimal, small ones three.
pub fn num(x: f64) -> String {
    if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["level", "value"]);
        t.row(["CN", "14.3"]);
        t.row(["VM-long-name", "1.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("level"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "14.3" and "1.0" start at the same offset.
        let off_a = lines[2].find("14.3").unwrap();
        let off_b = lines[3].find("1.0").unwrap();
        assert_eq!(off_a, off_b);
    }

    #[test]
    fn title_and_padding() {
        let mut t = Table::new(["a", "b", "c"]).with_title("Table X");
        t.row(["1"]); // short row padded
        let s = t.render();
        assert!(s.starts_with("== Table X =="));
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.754), "75.4");
        assert_eq!(rw_pair("75.4", "42.6"), "75.4 / 42.6");
        assert_eq!(num(12345.678), "12345.7");
        assert_eq!(num(3.21987), "3.22");
        assert_eq!(num(0.1234), "0.123");
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(["x"]);
        t.row(["1"]);
        assert_eq!(t.to_string(), t.render());
    }
}
