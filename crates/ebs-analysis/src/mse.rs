//! Mean squared error and relatives, used to score the traffic predictors
//! of §6.1.3 (Figure 4(c)).

/// Mean squared error between predictions and ground truth.
/// `None` when the slices are empty or of different length.
pub fn mse(pred: &[f64], truth: &[f64]) -> Option<f64> {
    if pred.is_empty() || pred.len() != truth.len() {
        return None;
    }
    let s: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t).powi(2)).sum();
    Some(s / pred.len() as f64)
}

/// Root mean squared error.
pub fn rmse(pred: &[f64], truth: &[f64]) -> Option<f64> {
    mse(pred, truth).map(f64::sqrt)
}

/// MSE normalized by the variance of the ground truth — 1.0 means "no
/// better than predicting the mean"; comparable across clusters with very
/// different traffic magnitudes.
pub fn normalized_mse(pred: &[f64], truth: &[f64]) -> Option<f64> {
    let e = mse(pred, truth)?;
    let n = truth.len() as f64;
    let mean = truth.iter().sum::<f64>() / n;
    let var = truth.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / n;
    if var <= 0.0 {
        None
    } else {
        Some(e / var)
    }
}

/// Mean absolute error.
pub fn mae(pred: &[f64], truth: &[f64]) -> Option<f64> {
    if pred.is_empty() || pred.len() != truth.len() {
        return None;
    }
    let s: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t).abs()).sum();
    Some(s / pred.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_zero() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(mse(&v, &v), Some(0.0));
        assert_eq!(mae(&v, &v), Some(0.0));
    }

    #[test]
    fn known_error() {
        let e = mse(&[1.0, 2.0], &[2.0, 4.0]).unwrap();
        assert!((e - 2.5).abs() < 1e-12); // (1 + 4) / 2
        assert!((rmse(&[1.0, 2.0], &[2.0, 4.0]).unwrap() - 2.5f64.sqrt()).abs() < 1e-12);
        assert!((mae(&[1.0, 2.0], &[2.0, 4.0]).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mismatched_or_empty_is_none() {
        assert_eq!(mse(&[1.0], &[1.0, 2.0]), None);
        assert_eq!(mse(&[], &[]), None);
    }

    #[test]
    fn normalized_mse_baseline_is_one() {
        // Predicting the mean everywhere scores exactly 1.0.
        let truth = [1.0, 3.0, 5.0, 7.0];
        let mean = 4.0;
        let pred = [mean; 4];
        let n = normalized_mse(&pred, &truth).unwrap();
        assert!((n - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_mse_constant_truth_is_none() {
        assert_eq!(normalized_mse(&[1.0, 1.0], &[2.0, 2.0]), None);
    }
}
