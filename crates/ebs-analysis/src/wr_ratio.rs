//! Normalized write-to-read ratio, Equation 2 of the paper:
//! `wr_ratio = (W − R) / (W + R)`, ranging in `[-1, 1]`.
//!
//! `+1` means pure write traffic, `−1` pure read. The paper calls a sample
//! *write-dominant* when `wr_ratio > 1/3` (write ≥ 2× read) and
//! *read-dominant* when `wr_ratio < −1/3`.

/// Threshold above which traffic is write-dominant (write ≥ 2× read).
pub const WRITE_DOMINANT: f64 = 1.0 / 3.0;
/// Threshold below which traffic is read-dominant (read ≥ 2× write).
pub const READ_DOMINANT: f64 = -1.0 / 3.0;

/// `(W − R) / (W + R)`. Returns `None` when there is no traffic at all.
pub fn wr_ratio(write: f64, read: f64) -> Option<f64> {
    let total = write + read;
    if total <= 0.0 {
        None
    } else {
        Some((write - read) / total)
    }
}

/// Dominance classification of a `wr_ratio` value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dominance {
    /// `wr_ratio < −1/3`: read at least twice the write.
    ReadDominant,
    /// `|wr_ratio| ≤ 1/3`: balanced traffic.
    Mixed,
    /// `wr_ratio > 1/3`: write at least twice the read.
    WriteDominant,
}

/// Classify a ratio into read-dominant / mixed / write-dominant.
pub fn dominance(ratio: f64) -> Dominance {
    if ratio > WRITE_DOMINANT {
        Dominance::WriteDominant
    } else if ratio < READ_DOMINANT {
        Dominance::ReadDominant
    } else {
        Dominance::Mixed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_directions_hit_bounds() {
        assert_eq!(wr_ratio(10.0, 0.0), Some(1.0));
        assert_eq!(wr_ratio(0.0, 10.0), Some(-1.0));
    }

    #[test]
    fn balanced_traffic_is_zero() {
        assert_eq!(wr_ratio(5.0, 5.0), Some(0.0));
    }

    #[test]
    fn two_to_one_write_is_exactly_one_third() {
        let r = wr_ratio(2.0, 1.0).unwrap();
        assert!((r - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(dominance(r), Dominance::Mixed); // boundary is inclusive
        assert_eq!(dominance(r + 1e-9), Dominance::WriteDominant);
    }

    #[test]
    fn dominance_classification() {
        assert_eq!(dominance(0.9), Dominance::WriteDominant);
        assert_eq!(dominance(-0.9), Dominance::ReadDominant);
        assert_eq!(dominance(0.0), Dominance::Mixed);
    }

    #[test]
    fn no_traffic_is_none() {
        assert_eq!(wr_ratio(0.0, 0.0), None);
    }

    #[test]
    fn ratio_always_in_unit_interval() {
        for (w, r) in [(1.0, 3.0), (100.0, 0.5), (0.25, 0.25)] {
            let x = wr_ratio(w, r).unwrap();
            assert!((-1.0..=1.0).contains(&x));
        }
    }
}
