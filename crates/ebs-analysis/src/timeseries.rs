//! Dense time-series helpers: re-binning, smoothing, and windows.

/// Re-bin a series by summing `window` consecutive samples (the paper's
/// "measured at a 1/30/60-minute scale"). The final bin may be partial.
pub fn rebin_sum(series: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    series.chunks(window).map(|c| c.iter().sum()).collect()
}

/// Simple moving average with a trailing window of `window` samples.
pub fn moving_average(series: &[f64], window: usize) -> Vec<f64> {
    assert!(window > 0, "window must be positive");
    let mut out = Vec::with_capacity(series.len());
    let mut sum = 0.0;
    for (i, &x) in series.iter().enumerate() {
        sum += x;
        if i >= window {
            sum -= series[i - window];
        }
        let n = (i + 1).min(window);
        out.push(sum / n as f64);
    }
    out
}

/// First-order difference `x[t] − x[t−1]` (length `n − 1`).
pub fn diff(series: &[f64]) -> Vec<f64> {
    series.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Invert a first-order difference given the first original value.
pub fn undiff(first: f64, diffs: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(diffs.len() + 1);
    out.push(first);
    let mut acc = first;
    for &d in diffs {
        acc += d;
        out.push(acc);
    }
    out
}

/// Indexes of the `k` largest values (ties broken by earlier index).
pub fn top_k_indexes(series: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..series.len()).collect();
    idx.sort_by(|&a, &b| {
        series[b]
            .partial_cmp(&series[a])
            .expect("no NaNs")
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Fraction of samples that are non-zero (the generator's duty cycle).
pub fn duty_cycle(series: &[f64]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    series.iter().filter(|&&x| x != 0.0).count() as f64 / series.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebin_sums_chunks() {
        assert_eq!(
            rebin_sum(&[1.0, 2.0, 3.0, 4.0, 5.0], 2),
            vec![3.0, 7.0, 5.0]
        );
    }

    #[test]
    fn moving_average_warms_up() {
        let ma = moving_average(&[2.0, 4.0, 6.0, 8.0], 2);
        assert_eq!(ma, vec![2.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn diff_and_undiff_roundtrip() {
        let v = [3.0, 5.0, 4.0, 9.0];
        let d = diff(&v);
        assert_eq!(d, vec![2.0, -1.0, 5.0]);
        assert_eq!(undiff(v[0], &d), v.to_vec());
    }

    #[test]
    fn top_k_orders_by_value() {
        assert_eq!(top_k_indexes(&[1.0, 9.0, 5.0, 9.0], 2), vec![1, 3]);
        assert_eq!(top_k_indexes(&[1.0], 5), vec![0]);
    }

    #[test]
    fn duty_cycle_counts_active() {
        assert_eq!(duty_cycle(&[0.0, 1.0, 0.0, 2.0]), 0.5);
        assert_eq!(duty_cycle(&[]), 0.0);
    }
}
