//! Empirical cumulative distribution functions, used by every "CDF of …"
//! figure in the paper.

/// An empirical CDF over a finite sample.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from a sample (NaNs dropped). The sample may be empty; all
    /// queries on an empty CDF return `None`.
    pub fn new(values: &[f64]) -> Self {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
        Self { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X ≤ x)`.
    pub fn at(&self, x: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        Some(idx as f64 / self.sorted.len() as f64)
    }

    /// Fraction of samples strictly above `x` (the "proportion of nodes
    /// whose hottest QP contributes more than 80 %" style of statement).
    pub fn above(&self, x: f64) -> Option<f64> {
        self.at(x).map(|p| 1.0 - p)
    }

    /// Inverse CDF (quantile).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        crate::quantile::quantile(&self.sorted, q)
    }

    /// Evenly spaced `(x, P(X ≤ x))` points suitable for plotting or for
    /// the experiment harness to print as a series. Returns `points`
    /// samples spanning the data range.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if points == 1 || hi == lo {
            return vec![(hi, 1.0)];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.at(x).expect("non-empty"))
            })
            .collect()
    }

    /// The underlying sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_steps_through_sample() {
        let c = Cdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.at(0.5), Some(0.0));
        assert_eq!(c.at(1.0), Some(0.25));
        assert_eq!(c.at(2.5), Some(0.5));
        assert_eq!(c.at(4.0), Some(1.0));
        assert_eq!(c.above(3.0), Some(0.25));
    }

    #[test]
    fn empty_cdf_returns_none() {
        let c = Cdf::new(&[]);
        assert_eq!(c.at(1.0), None);
        assert_eq!(c.quantile(0.5), None);
        assert!(c.curve(10).is_empty());
        assert!(c.is_empty());
    }

    #[test]
    fn quantile_inverts() {
        let c = Cdf::new(&[10.0, 20.0, 30.0]);
        assert_eq!(c.quantile(0.5), Some(20.0));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn curve_is_monotone() {
        let c = Cdf::new(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        let pts = c.curve(11);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn degenerate_single_value_curve() {
        let c = Cdf::new(&[7.0, 7.0]);
        assert_eq!(c.curve(5), vec![(7.0, 1.0)]);
    }
}
