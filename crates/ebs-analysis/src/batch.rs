//! Column-at-a-time batch kernels: the streaming-aggregation inner loops
//! of the store replay path, operating on whole decoded columns instead of
//! one event at a time.
//!
//! The kernels are shaped for the two properties the v2 store decode
//! guarantees: timestamps arrive **sorted** (so per-tick accumulation is
//! run-batched — one `f64` add per run of equal ticks, not per event) and
//! VD ids arrive **dictionary-compressed** (so per-VD accumulation sums
//! into a chunk-local partial array that fits in cache, then scatters once
//! per distinct VD).
//!
//! Exactness: every weight is an integer (request sizes are `u32`), and
//! all realistic totals stay far below 2^53, where `f64` addition of
//! integers is exact and therefore associative. Reordering the adds —
//! per-key partials, per-run batching — produces bit-identical results to
//! the per-event reference loop, which is what lets the streaming summary
//! assert equality against the materialized [`crate::quantile`] /
//! [`crate::ccr`] / [`crate::p2a`] answers.
//!
//! All kernels are total: out-of-range keys report `false` (or `None`)
//! instead of panicking, because their inputs come from disk.

use ebs_core::time::TickSpec;
use std::collections::BTreeMap;

/// Sum `weights[i]` into `partials[keys[i]]` for every `i`. Returns
/// `false` (leaving `partials` partially updated) if the slices differ in
/// length or any key falls outside `partials`.
pub fn keyed_sums(keys: &[u64], weights: &[u64], partials: &mut [f64]) -> bool {
    if keys.len() != weights.len() {
        return false;
    }
    for (&k, &w) in keys.iter().zip(weights) {
        match usize::try_from(k).ok().and_then(|i| partials.get_mut(i)) {
            Some(p) => *p += w as f64,
            None => return false,
        }
    }
    true
}

/// Scatter chunk-local per-key `partials` into a global accumulator:
/// `dst[ids[k]] += partials[k]`. Returns `false` if the slices differ in
/// length or any id falls outside `dst`.
pub fn scatter_add(dst: &mut [f64], ids: &[u32], partials: &[f64]) -> bool {
    if ids.len() != partials.len() {
        return false;
    }
    for (&id, &p) in ids.iter().zip(partials) {
        match dst.get_mut(id as usize) {
            Some(d) => *d += p,
            None => return false,
        }
    }
    true
}

/// Accumulate per-tick weight totals from **sorted** timestamps: runs of
/// events landing on the same tick are summed as integers and added to
/// the grid with a single `f64` add per run. Returns `false` if the
/// slices differ in length or the grid is smaller than `ticks` declares.
pub fn tick_sums(ticks: TickSpec, t_us: &[u64], weights: &[u64], out: &mut [f64]) -> bool {
    if t_us.len() != weights.len() {
        return false;
    }
    let mut run_tick = u32::MAX;
    let mut run_sum = 0u64;
    for (&t, &w) in t_us.iter().zip(weights) {
        let tick = ticks.tick_of_us(t);
        if tick != run_tick {
            if run_sum > 0 {
                match out.get_mut(run_tick as usize) {
                    Some(slot) => *slot += run_sum as f64,
                    None => return false,
                }
            }
            run_tick = tick;
            run_sum = 0;
        }
        run_sum += w;
    }
    if run_sum > 0 {
        match out.get_mut(run_tick as usize) {
            Some(slot) => *slot += run_sum as f64,
            None => return false,
        }
    }
    true
}

/// Count each value into a `u32`-keyed histogram, coalescing adjacent
/// runs of equal values into one map update. Returns `false` if a value
/// does not fit in `u32`. The histogram is a `BTreeMap` so downstream
/// iteration is canonically ordered (rule D6), not hash-ordered.
pub fn count_values(values: &[u64], counts: &mut BTreeMap<u32, u64>) -> bool {
    let mut run_value = u64::MAX;
    let mut run_count = 0u64;
    for &v in values {
        if v != run_value {
            if run_count > 0 {
                match u32::try_from(run_value) {
                    Ok(key) => *counts.entry(key).or_insert(0) += run_count,
                    Err(_) => return false,
                }
            }
            run_value = v;
            run_count = 0;
        }
        run_count += 1;
    }
    if run_count > 0 {
        match u32::try_from(run_value) {
            Ok(key) => *counts.entry(key).or_insert(0) += run_count,
            Err(_) => return false,
        }
    }
    true
}

/// The `q`-quantile of a weighted histogram given as **sorted**
/// `(value, count)` pairs, linear-interpolated between order statistics
/// exactly like [`crate::quantile`] on the expanded multiset. `total`
/// is the sum of all counts; `None` when it is zero or the pairs do not
/// cover it.
pub fn weighted_quantile(pairs: &[(u32, u64)], total: u64, q: f64) -> Option<f64> {
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (total - 1) as f64;
    let lo_rank = pos.floor() as u64;
    let hi_rank = pos.ceil() as u64;
    let lo = value_at_rank(pairs, lo_rank)?;
    if lo_rank == hi_rank {
        return Some(lo);
    }
    let hi = value_at_rank(pairs, hi_rank)?;
    let frac = pos - lo_rank as f64;
    Some(lo * (1.0 - frac) + hi * frac)
}

/// Fraction of the weighted histogram at or below `x` (the empirical CDF
/// of the expanded multiset, matching [`crate::Cdf`]). Pairs must be
/// sorted by value; `None` when `total` is zero.
pub fn weighted_cdf_at(pairs: &[(u32, u64)], total: u64, x: f64) -> Option<f64> {
    if total == 0 {
        return None;
    }
    let below: u64 = pairs
        .iter()
        .take_while(|&&(value, _)| f64::from(value) <= x)
        .map(|&(_, count)| count)
        .sum();
    Some(below as f64 / total as f64)
}

/// The value holding the `rank`-th position (0-based) of the expanded
/// multiset.
fn value_at_rank(pairs: &[(u32, u64)], rank: u64) -> Option<f64> {
    let mut seen = 0u64;
    for &(value, count) in pairs {
        seen += count;
        if rank < seen {
            return Some(f64::from(value));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::quantile;
    use crate::Cdf;

    #[test]
    fn keyed_sums_then_scatter_matches_direct_accumulation() {
        let keys = [0u64, 2, 2, 1, 0, 2];
        let weights = [10u64, 20, 30, 40, 50, 60];
        let ids = [5u32, 0, 9];
        let mut partials = vec![0.0; 3];
        assert!(keyed_sums(&keys, &weights, &mut partials));
        let mut dst = vec![0.0; 10];
        assert!(scatter_add(&mut dst, &ids, &partials));
        let mut want = vec![0.0; 10];
        for (&k, &w) in keys.iter().zip(&weights) {
            want[ids[k as usize] as usize] += w as f64;
        }
        assert_eq!(dst, want);
    }

    #[test]
    fn out_of_range_keys_report_false() {
        let mut partials = vec![0.0; 2];
        assert!(!keyed_sums(&[0, 5], &[1, 1], &mut partials));
        assert!(!keyed_sums(&[0], &[1, 2], &mut partials));
        let mut dst = vec![0.0; 2];
        assert!(!scatter_add(&mut dst, &[7], &[1.0]));
        assert!(!scatter_add(&mut dst, &[0], &[1.0, 2.0]));
    }

    #[test]
    fn tick_sums_run_batching_matches_per_event() {
        let ticks = TickSpec::new(1.0, 4);
        // Sorted timestamps crossing tick boundaries, with a clamped tail.
        let t_us: Vec<u64> = vec![0, 10, 999_999, 1_000_000, 1_000_001, 2_500_000, 9_999_999];
        let weights: Vec<u64> = vec![1, 2, 3, 4, 5, 6, 7];
        let mut batched = vec![0.0; 4];
        assert!(tick_sums(ticks, &t_us, &weights, &mut batched));
        let mut reference = vec![0.0; 4];
        for (&t, &w) in t_us.iter().zip(&weights) {
            reference[ticks.tick_of_us(t) as usize] += w as f64;
        }
        assert_eq!(batched, reference);
    }

    #[test]
    fn tick_sums_rejects_a_grid_smaller_than_the_spec() {
        let ticks = TickSpec::new(1.0, 4);
        let mut short = vec![0.0; 1];
        assert!(!tick_sums(ticks, &[0, 3_500_000], &[1, 1], &mut short));
    }

    #[test]
    fn count_values_coalesces_runs_correctly() {
        let values = [4096u64, 4096, 4096, 8192, 4096, 8192, 8192];
        let mut counts = BTreeMap::new();
        assert!(count_values(&values, &mut counts));
        assert_eq!(counts.get(&4096), Some(&4));
        assert_eq!(counts.get(&8192), Some(&3));
        assert_eq!(counts.len(), 2);
        assert!(!count_values(&[u64::MAX], &mut counts));
    }

    #[test]
    fn weighted_quantile_and_cdf_match_expanded_multiset() {
        let pairs = [(4096u32, 5u64), (8192, 2), (65536, 1)];
        let total: u64 = pairs.iter().map(|&(_, c)| c).sum();
        let expanded: Vec<f64> = pairs
            .iter()
            .flat_map(|&(v, c)| std::iter::repeat_n(f64::from(v), c as usize))
            .collect();
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            assert_eq!(weighted_quantile(&pairs, total, q), quantile(&expanded, q));
        }
        let cdf = Cdf::new(&expanded);
        for x in [0.0, 4095.0, 4096.0, 9000.0, 65536.0, 1e9] {
            assert_eq!(weighted_cdf_at(&pairs, total, x), cdf.at(x));
        }
        assert_eq!(weighted_quantile(&[], 0, 0.5), None);
        assert_eq!(weighted_cdf_at(&[], 0, 1.0), None);
    }
}
