//! Quantiles with linear interpolation (the "50 %ile", "99 %ile" values the
//! paper reports everywhere).

/// The `q`-quantile (`q ∈ [0, 1]`) of `values`, using linear interpolation
/// between order statistics (the same convention as NumPy's default).
/// Returns `None` for an empty slice; NaNs are ignored.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let frac = pos - lo as f64;
        Some(v[lo] * (1.0 - frac) + v[hi] * frac)
    }
}

/// Median (50th percentile).
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Several quantiles of the same data in one sorting pass.
pub fn quantiles(values: &[f64], qs: &[f64]) -> Vec<Option<f64>> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| !x.is_nan()).collect();
    if v.is_empty() {
        return vec![None; qs.len()];
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered"));
    qs.iter()
        .map(|&q| {
            let q = q.clamp(0.0, 1.0);
            let pos = q * (v.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            Some(if lo == hi {
                v[lo]
            } else {
                let frac = pos - lo as f64;
                v[lo] * (1.0 - frac) + v[hi] * frac
            })
        })
        .collect()
}

/// Arithmetic mean; `None` for empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
    }

    #[test]
    fn extremes_are_min_and_max() {
        let v = [5.0, 1.0, 9.0, 3.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(9.0));
    }

    #[test]
    fn interpolates_between_points() {
        let v = [0.0, 10.0];
        assert_eq!(quantile(&v, 0.25), Some(2.5));
        assert_eq!(quantile(&v, 0.75), Some(7.5));
    }

    #[test]
    fn empty_and_nan_handling() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[f64::NAN, 4.0], 0.5), Some(4.0));
        assert_eq!(quantiles(&[], &[0.1, 0.9]), vec![None, None]);
    }

    #[test]
    fn quantiles_matches_quantile() {
        let v = [2.0, 7.0, 1.0, 9.0, 4.0];
        let qs = [0.0, 0.25, 0.5, 0.9, 1.0];
        let batch = quantiles(&v, &qs);
        for (i, &q) in qs.iter().enumerate() {
            assert_eq!(batch[i], quantile(&v, q));
        }
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn out_of_range_q_clamps() {
        let v = [1.0, 2.0];
        assert_eq!(quantile(&v, -1.0), Some(1.0));
        assert_eq!(quantile(&v, 2.0), Some(2.0));
    }
}
