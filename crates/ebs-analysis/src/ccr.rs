//! Cumulative Contribution Rate (CCR), the paper's spatial-skewness metric.
//!
//! "1 %-CCR" at, say, the VM level is the fraction of total traffic
//! contributed by the top 1 % of VMs when VMs are ranked by their traffic
//! (§3.1, following Lee et al.).

/// CCR of `contributions` at top-fraction `frac` (e.g. `0.01` for the
/// paper's "1 %-CCR"). Returns a fraction in `[0, 1]`.
///
/// For positive fractions the number of top entities is `ceil(frac · n)`,
/// clamped to at least one, so tiny fleets still have a well-defined
/// "top 1 %". The top-0 % of a fleet contributes nothing, so `frac = 0.0`
/// is `0.0` — not the top-1 share the old floor-at-one clamp produced.
/// Returns `None` if the slice is empty or total contribution is not
/// positive.
pub fn ccr(contributions: &[f64], frac: f64) -> Option<f64> {
    if contributions.is_empty() || !(0.0..=1.0).contains(&frac) {
        return None;
    }
    let total: f64 = contributions.iter().sum();
    if total <= 0.0 {
        return None;
    }
    if frac == 0.0 {
        return Some(0.0);
    }
    let mut sorted: Vec<f64> = contributions.to_vec();
    // `total_cmp` gives the same descending order as `partial_cmp` for
    // NaN-free data while keeping the sort — and thus every caller in the
    // total set — panic-free (NaNs sink to the end and total > 0 already
    // rejects NaN-poisoned sums).
    sorted.sort_by(|a, b| b.total_cmp(a));
    let k = ((frac * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    let top: f64 = sorted.iter().take(k).sum();
    Some(top / total)
}

/// The full CCR curve: for each rank `k` (1-based), the cumulative share of
/// traffic carried by the `k` largest contributors. Monotone non-decreasing,
/// ending at 1.0. Empty if total contribution is not positive.
pub fn ccr_curve(contributions: &[f64]) -> Vec<f64> {
    let total: f64 = contributions.iter().sum();
    if contributions.is_empty() || total <= 0.0 {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = contributions.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut acc = 0.0;
    sorted
        .iter()
        .map(|&x| {
            acc += x;
            acc / total
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_contributions_give_proportional_ccr() {
        let v = vec![1.0; 100];
        let c = ccr(&v, 0.2).unwrap();
        assert!((c - 0.2).abs() < 1e-12);
    }

    #[test]
    fn skewed_contributions_concentrate() {
        let mut v = vec![1.0; 99];
        v.push(901.0); // one hot entity: 90.1% of 1000 total
        let c = ccr(&v, 0.01).unwrap();
        assert!((c - 0.901).abs() < 1e-12);
    }

    #[test]
    fn top_count_rounds_up_and_floors_at_one() {
        // 10 entities, 1% → still 1 entity.
        let mut v = vec![0.0; 9];
        v.push(10.0);
        assert_eq!(ccr(&v, 0.01), Some(1.0));
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert_eq!(ccr(&[], 0.01), None);
        assert_eq!(ccr(&[0.0, 0.0], 0.2), None);
        assert_eq!(ccr(&[1.0], -0.1), None);
        assert_eq!(ccr(&[1.0], 1.5), None);
    }

    #[test]
    fn curve_is_monotone_and_ends_at_one() {
        let v = [5.0, 1.0, 3.0, 1.0];
        let curve = ccr_curve(&v);
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((curve.last().unwrap() - 1.0).abs() < 1e-12);
        assert!((curve[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_fraction_is_total() {
        let v = [2.0, 3.0, 5.0];
        assert!((ccr(&v, 1.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_fraction_contributes_nothing() {
        // The top 0% of any fleet carries 0% of the traffic — previously
        // this returned the top-1 contributor's share (0.9 here).
        let mut v = vec![1.0; 9];
        v.push(81.0);
        assert_eq!(ccr(&v, 0.0), Some(0.0));
    }

    #[test]
    fn boundary_fractions_cover_the_clamp_edges() {
        let n = 10;
        let mut v = vec![1.0; n - 1];
        v.push(81.0); // top entity: 90% of 90 total
                      // frac = 1/n selects exactly the top entity…
        let one_of_n = ccr(&v, 1.0 / n as f64).unwrap();
        assert!((one_of_n - 0.9).abs() < 1e-12);
        // …any smaller positive fraction still floors at one entity…
        let tiny = ccr(&v, 1e-6).unwrap();
        assert!((tiny - 0.9).abs() < 1e-12);
        // …frac = 1.0 takes everything, and frac = 0.0 takes nothing.
        assert!((ccr(&v, 1.0).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(ccr(&v, 0.0), Some(0.0));
    }
}
