//! Coefficient of variation (CoV) and the normalized CoV the paper uses to
//! score inter-entity skewness (§4.1).
//!
//! For `n` non-negative values with a fixed positive sum, the plain CoV
//! (`σ/μ`, population standard deviation) is maximised at `√(n−1)` — when a
//! single entity carries everything. The paper's *normalized* CoV divides by
//! that bound so the statistic lands in `(0, 1]`, with 1 meaning "one entity
//! takes all traffic".

/// Plain coefficient of variation `σ/μ` (population σ). `None` if fewer than
/// two values or the mean is not positive.
pub fn cov(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return None;
    }
    let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    Some(var.sqrt() / mean)
}

/// Normalized CoV in `[0, 1]`: [`cov`] divided by its maximum `√(n−1)`.
pub fn normalized_cov(values: &[f64]) -> Option<f64> {
    let c = cov(values)?;
    let bound = ((values.len() - 1) as f64).sqrt();
    Some((c / bound).min(1.0))
}

/// Traffic share of the hottest entity: `max / sum`. `None` if the sum is
/// not positive.
pub fn hottest_share(values: &[f64]) -> Option<f64> {
    let sum: f64 = values.iter().sum();
    if values.is_empty() || sum <= 0.0 {
        return None;
    }
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(max / sum)
}

/// Ratio of the hottest to the coldest entity (`max / min`); `f64::INFINITY`
/// when the coldest is zero. `None` on empty input or non-positive sum.
pub fn hot_cold_ratio(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().sum::<f64>() <= 0.0 {
        return None;
    }
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    Some(if min <= 0.0 { f64::INFINITY } else { max / min })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_values_have_zero_cov() {
        assert_eq!(cov(&[2.0, 2.0, 2.0]), Some(0.0));
        assert_eq!(normalized_cov(&[2.0, 2.0, 2.0]), Some(0.0));
    }

    #[test]
    fn single_hot_entity_maximises_normalized_cov() {
        let v = [10.0, 0.0, 0.0, 0.0];
        let nc = normalized_cov(&v).unwrap();
        assert!((nc - 1.0).abs() < 1e-12, "got {nc}");
    }

    #[test]
    fn normalized_cov_is_bounded() {
        let v = [5.0, 1.0, 0.5, 3.0, 0.0, 9.0];
        let nc = normalized_cov(&v).unwrap();
        assert!((0.0..=1.0).contains(&nc));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(cov(&[1.0]), None);
        assert_eq!(cov(&[]), None);
        assert_eq!(cov(&[0.0, 0.0]), None);
        assert_eq!(normalized_cov(&[0.0, 0.0, 0.0]), None);
    }

    #[test]
    fn hottest_share_and_ratio() {
        let v = [1.0, 3.0, 6.0];
        assert!((hottest_share(&v).unwrap() - 0.6).abs() < 1e-12);
        assert!((hot_cold_ratio(&v).unwrap() - 6.0).abs() < 1e-12);
        assert_eq!(hot_cold_ratio(&[1.0, 0.0]), Some(f64::INFINITY));
        assert_eq!(hottest_share(&[0.0]), None);
    }

    #[test]
    fn cov_known_value() {
        // values 2, 4: mean 3, population σ = 1 → CoV = 1/3.
        let c = cov(&[2.0, 4.0]).unwrap();
        assert!((c - 1.0 / 3.0).abs() < 1e-12);
        // bound for n=2 is 1, so normalized equals plain here.
        let nc = normalized_cov(&[2.0, 4.0]).unwrap();
        assert!((nc - c).abs() < 1e-12);
    }
}
