//! # ebs-analysis — statistics kernels for the skewness study
//!
//! The paper quantifies traffic skewness with a small set of statistics that
//! recur in every section; this crate implements them once:
//!
//! * **CCR** — Cumulative Contribution Rate: share of total traffic carried
//!   by the top *x* % of entities (spatial skewness, Table 3/4).
//! * **P2A** — Peak-to-Average ratio of a time series (temporal skewness).
//! * **Normalized CoV** — coefficient of variation scaled into `(0, 1]`
//!   (inter-entity skewness, §4, §6.2).
//! * **wr_ratio** — normalized write-to-read ratio `(W−R)/(W+R)` (§5.2, §7.2).
//! * Quantiles, empirical CDFs, histograms, and MSE.
//!
//! [`aggregate`] rolls the per-QP / per-segment metric data up to any level
//! of the hierarchy (WT, VD, VM, CN, user; BS, SN), which is how every table
//! in the paper is produced, and [`table`] renders aligned text tables for
//! the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod batch;
pub mod ccr;
pub mod cdf;
pub mod cov;
pub mod gini;
pub mod histogram;
pub mod mse;
pub mod p2a;
pub mod quantile;
pub mod table;
pub mod timeseries;
pub mod wr_ratio;

pub use aggregate::{ComputeLevel, StorageLevel};
pub use batch::{
    count_values, keyed_sums, scatter_add, tick_sums, weighted_cdf_at, weighted_quantile,
};
pub use ccr::ccr;
pub use cdf::Cdf;
pub use cov::{cov, normalized_cov};
pub use gini::gini;
pub use histogram::Histogram;
pub use mse::mse;
pub use p2a::p2a;
pub use quantile::{median, quantile};
pub use table::Table;
pub use wr_ratio::wr_ratio;
