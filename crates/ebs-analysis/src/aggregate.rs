//! Rolling per-QP / per-segment metric data up the entity hierarchy.
//!
//! Table 3 aggregates traffic at the compute-node, VM, storage-node, and
//! segment levels; §4 needs worker-thread and VD levels, §6 the BlockServer
//! level. This module maps every base series (QP or segment) to its owning
//! entity at the requested level and sums, producing either per-entity
//! totals (for CCR) or per-entity dense time series (for P2A / CoV).

use ebs_core::ids::{BsId, QpId, SegId};
use ebs_core::metric::{ComputeMetrics, Measure, StorageMetrics};
use ebs_core::topology::Fleet;

/// Aggregation levels reachable from the compute-domain (per-QP) metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ComputeLevel {
    /// Queue pair (no aggregation).
    Qp,
    /// Hypervisor worker thread (via the fleet's QP→WT binding).
    Wt,
    /// Virtual disk.
    Vd,
    /// Virtual machine.
    Vm,
    /// Compute node.
    Cn,
    /// Tenant.
    User,
}

/// Aggregation levels reachable from the storage-domain (per-segment)
/// metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StorageLevel {
    /// Segment (no aggregation).
    Seg,
    /// BlockServer (via a segment→BS placement map).
    Bs,
    /// Storage node (via the BlockServer's host).
    Sn,
}

/// The result of a roll-up: one entry per entity that had at least one kept
/// base series, sorted by entity key.
#[derive(Clone, Debug)]
pub struct Rollup {
    /// `(entity index at the chosen level, dense per-tick series)`.
    pub series: Vec<(usize, Vec<f64>)>,
}

impl Rollup {
    /// Window-total traffic per entity (sum of each dense series).
    pub fn totals(&self) -> Vec<f64> {
        self.series.iter().map(|(_, s)| s.iter().sum()).collect()
    }

    /// Just the dense series, entity order preserved.
    pub fn dense(&self) -> Vec<&[f64]> {
        self.series.iter().map(|(_, s)| s.as_slice()).collect()
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no entity had traffic-bearing series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Series for one entity key, if present.
    pub fn get(&self, key: usize) -> Option<&[f64]> {
        self.series
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| self.series[i].1.as_slice())
    }
}

/// Entity key of `qp` at `level`.
pub fn compute_key(fleet: &Fleet, level: ComputeLevel, qp: QpId) -> usize {
    match level {
        ComputeLevel::Qp => qp.index(),
        ComputeLevel::Wt => fleet.qp_binding[qp].index(),
        ComputeLevel::Vd => fleet.qps[qp].vd.index(),
        ComputeLevel::Vm => fleet.vm_of_qp(qp).index(),
        ComputeLevel::Cn => fleet.cn_of_qp(qp).index(),
        ComputeLevel::User => fleet.vms[fleet.vm_of_qp(qp)].user.index(),
    }
}

/// Entity key of `seg` at `level`, under the placement `seg_home`
/// (`None` = the fleet's initial placement).
pub fn storage_key(
    fleet: &Fleet,
    level: StorageLevel,
    seg: SegId,
    seg_home: Option<&[BsId]>,
) -> usize {
    let home = |s: SegId| -> BsId {
        match seg_home {
            Some(map) => map[s.index()],
            None => fleet.seg_home[s],
        }
    };
    match level {
        StorageLevel::Seg => seg.index(),
        StorageLevel::Bs => home(seg).index(),
        StorageLevel::Sn => fleet.block_servers[home(seg)].sn.index(),
    }
}

/// Roll compute-domain metrics up to `level`, keeping only QPs for which
/// `keep` returns true (e.g. one data center). Entities appear only if at
/// least one of their kept QPs has traffic.
pub fn rollup_compute(
    fleet: &Fleet,
    metrics: &ComputeMetrics,
    level: ComputeLevel,
    measure: Measure,
    keep: impl Fn(QpId) -> bool,
) -> Rollup {
    let ticks = metrics.ticks.ticks as usize;
    let mut map: std::collections::BTreeMap<usize, Vec<f64>> = std::collections::BTreeMap::new();
    for (i, series) in metrics.per_qp.iter().enumerate() {
        let qp = QpId::from_index(i);
        if series.is_empty() || !keep(qp) {
            continue;
        }
        let key = compute_key(fleet, level, qp);
        let acc = map.entry(key).or_insert_with(|| vec![0.0; ticks]);
        series.accumulate_into(acc, measure);
    }
    Rollup {
        series: map.into_iter().collect(),
    }
}

/// Roll storage-domain metrics up to `level`, keeping only segments for
/// which `keep` returns true, under an optional segment→BS placement map.
pub fn rollup_storage(
    fleet: &Fleet,
    metrics: &StorageMetrics,
    level: StorageLevel,
    measure: Measure,
    seg_home: Option<&[BsId]>,
    keep: impl Fn(SegId) -> bool,
) -> Rollup {
    let ticks = metrics.ticks.ticks as usize;
    let mut map: std::collections::BTreeMap<usize, Vec<f64>> = std::collections::BTreeMap::new();
    for (i, series) in metrics.per_seg.iter().enumerate() {
        let seg = SegId::from_index(i);
        if series.is_empty() || !keep(seg) {
            continue;
        }
        let key = storage_key(fleet, level, seg, seg_home);
        let acc = map.entry(key).or_insert_with(|| vec![0.0; ticks]);
        series.accumulate_into(acc, measure);
    }
    Rollup {
        series: map.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_core::apps::AppClass;
    use ebs_core::metric::{Flow, RwFlow};
    use ebs_core::spec::VdTier;
    use ebs_core::time::TickSpec;
    use ebs_core::topology::FleetBuilder;
    use ebs_core::units::GIB;

    fn fleet_and_metrics() -> (Fleet, ComputeMetrics, StorageMetrics) {
        let mut b = FleetBuilder::new();
        let dc = b.add_dc("DC-1");
        let sn = b.add_sn(dc);
        b.add_bs(sn);
        b.add_bs(sn);
        let user = b.add_user();
        let cn = b.add_cn(dc, 2, false);
        let vm = b.add_vm(cn, user, AppClass::Database);
        b.add_vd(vm, VdTier::Performance.spec(100 * GIB)); // 4 QPs, 4 segs
        let fleet = b.finish().unwrap();
        let ticks = TickSpec::new(1.0, 4);
        let mut cm = ComputeMetrics::empty(ticks, fleet.qps.len());
        let rw = |rb: f64| RwFlow {
            read: Flow {
                bytes: rb,
                ops: 1.0,
            },
            write: Flow::ZERO,
        };
        cm.per_qp[QpId(0)].push(0, rw(10.0));
        cm.per_qp[QpId(1)].push(1, rw(20.0));
        cm.per_qp[QpId(2)].push(1, rw(30.0));
        let mut sm = StorageMetrics::empty(ticks, fleet.segments.len());
        sm.per_seg[SegId(0)].push(0, rw(5.0));
        sm.per_seg[SegId(1)].push(2, rw(7.0));
        (fleet, cm, sm)
    }

    #[test]
    fn qp_level_is_identity() {
        let (fleet, cm, _) = fleet_and_metrics();
        let r = rollup_compute(&fleet, &cm, ComputeLevel::Qp, Measure::ReadBytes, |_| true);
        assert_eq!(r.len(), 3); // QP 3 had no traffic
        assert_eq!(r.totals(), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn wt_level_folds_round_robin_binding() {
        let (fleet, cm, _) = fleet_and_metrics();
        // 4 QPs round-robin onto 2 WTs: qp0,qp2 → wt0; qp1,qp3 → wt1.
        let r = rollup_compute(&fleet, &cm, ComputeLevel::Wt, Measure::ReadBytes, |_| true);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(0).unwrap(), &[10.0, 30.0, 0.0, 0.0]);
        assert_eq!(r.get(1).unwrap(), &[0.0, 20.0, 0.0, 0.0]);
    }

    #[test]
    fn vm_level_sums_everything() {
        let (fleet, cm, _) = fleet_and_metrics();
        let r = rollup_compute(&fleet, &cm, ComputeLevel::Vm, Measure::ReadBytes, |_| true);
        assert_eq!(r.len(), 1);
        assert_eq!(r.totals(), vec![60.0]);
    }

    #[test]
    fn keep_filter_restricts() {
        let (fleet, cm, _) = fleet_and_metrics();
        let r = rollup_compute(&fleet, &cm, ComputeLevel::Qp, Measure::ReadBytes, |qp| {
            qp.index() != 1
        });
        assert_eq!(r.totals(), vec![10.0, 30.0]);
    }

    #[test]
    fn storage_levels_follow_placement() {
        let (fleet, _, sm) = fleet_and_metrics();
        let r = rollup_storage(
            &fleet,
            &sm,
            StorageLevel::Bs,
            Measure::ReadBytes,
            None,
            |_| true,
        );
        // seg0 → bs0, seg1 → bs1 (round-robin placement).
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(0).unwrap(), &[5.0, 0.0, 0.0, 0.0]);
        assert_eq!(r.get(1).unwrap(), &[0.0, 0.0, 7.0, 0.0]);
        // Override placement: both segments on bs1.
        let map = vec![BsId(1), BsId(1), BsId(0), BsId(0), BsId(1), BsId(0)];
        let r = rollup_storage(
            &fleet,
            &sm,
            StorageLevel::Bs,
            Measure::ReadBytes,
            Some(&map),
            |_| true,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r.totals(), vec![12.0]);
    }

    #[test]
    fn sn_level_uses_bs_host() {
        let (fleet, _, sm) = fleet_and_metrics();
        let r = rollup_storage(
            &fleet,
            &sm,
            StorageLevel::Sn,
            Measure::ReadBytes,
            None,
            |_| true,
        );
        assert_eq!(r.len(), 1); // both BSs are on the single SN
        assert_eq!(r.totals(), vec![12.0]);
    }
}
