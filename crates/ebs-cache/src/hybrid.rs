//! Hybrid cache deployment (§7.3.2's closing proposal).
//!
//! CN-cache gives the best latency but disperses badly (some nodes would
//! need many cache slots, most none); BS-cache provisions tightly but
//! saves less latency. The paper suggests deploying both: a fixed number
//! of CN-cache slots per compute node for the hottest disks, with the
//! BS-cache as backup for cacheable disks that don't win a slot.
//!
//! [`assign_sites`] performs that placement and
//! [`hybrid_latency_gain`] evaluates it over stack-simulated traces.

use crate::hottest_block::HottestBlock;
use crate::location::{CacheSite, LatencyGain};
use ebs_core::hash::FxHashMap;
use ebs_core::ids::{CnId, VdId};
use ebs_core::io::Op;
use ebs_core::topology::Fleet;
use ebs_core::trace::TraceRecord;
use std::collections::HashMap;
use std::hash::BuildHasher;

/// Hybrid-deployment configuration.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// CN-cache slots per compute node (each slot pins one VD's hottest
    /// block).
    pub cn_slots_per_node: usize,
    /// Hottest-block access rate a VD needs to be cached at all.
    pub threshold: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            cn_slots_per_node: 2,
            threshold: crate::utilization::CACHEABLE_THRESHOLD,
        }
    }
}

/// Assign each cacheable VD a cache site: the `cn_slots_per_node` hottest
/// disks of every node win CN slots; the rest fall back to the BS-cache.
pub fn assign_sites<S: BuildHasher>(
    fleet: &Fleet,
    hot: &HashMap<VdId, HottestBlock, S>,
    config: &HybridConfig,
) -> FxHashMap<VdId, CacheSite> {
    let mut per_cn: FxHashMap<CnId, Vec<(f64, VdId)>> = FxHashMap::default();
    // ebs-lint: allow(D6) -- per-CN lists are fully sorted (rate, then vd) below, so fill order cannot leak
    for (&vd, hb) in hot {
        if hb.access_rate < config.threshold {
            continue;
        }
        let cn = fleet.vms[fleet.vds[vd].vm].cn;
        per_cn.entry(cn).or_default().push((hb.access_rate, vd));
    }
    let mut sites = FxHashMap::default();
    // ebs-lint: allow(D6) -- each VD's site depends only on its own node's sorted list; `sites` is a keyed map, so fill order is immaterial
    for (_, mut vds) in per_cn {
        vds.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaNs").then(a.1.cmp(&b.1)));
        for (rank, (_, vd)) in vds.into_iter().enumerate() {
            let site = if rank < config.cn_slots_per_node {
                CacheSite::ComputeNode
            } else {
                CacheSite::BlockServer
            };
            sites.insert(vd, site);
        }
    }
    sites
}

/// Latency gain of a hybrid deployment: each cache-hit record is served at
/// its VD's assigned site; records of uncached VDs (or cache misses) pay
/// the full path. `None` when no records of `op` exist.
pub fn hybrid_latency_gain<S: BuildHasher>(
    records: &[TraceRecord],
    hits: &[bool],
    sites: &HashMap<VdId, CacheSite, S>,
    op: Op,
) -> Option<LatencyGain> {
    assert_eq!(records.len(), hits.len());
    let mut without = Vec::new();
    let mut with = Vec::new();
    for (r, &hit) in records.iter().zip(hits) {
        if r.op != op {
            continue;
        }
        let full = r.lat.total_us();
        without.push(full);
        let served = match (hit, sites.get(&r.vd)) {
            (true, Some(CacheSite::ComputeNode)) => r.lat.cn_cache_us(),
            (true, Some(CacheSite::BlockServer)) => r.lat.bs_cache_us(),
            _ => full,
        };
        with.push(served);
    }
    if without.is_empty() {
        return None;
    }
    let gain = |q: f64| -> f64 {
        let w = ebs_analysis::quantile(&with, q).expect("non-empty");
        let o = ebs_analysis::quantile(&without, q).expect("non-empty");
        if o > 0.0 {
            w / o
        } else {
            1.0
        }
    };
    Some(LatencyGain {
        p0: gain(0.0),
        p50: gain(0.5),
        p99: gain(0.99),
    })
}

/// CN-cache slots actually consumed per compute node — the provisioning
/// footprint a hybrid deployment needs (bounded by `cn_slots_per_node`, by
/// construction).
pub fn cn_slot_usage<S: BuildHasher>(
    fleet: &Fleet,
    sites: &HashMap<VdId, CacheSite, S>,
) -> Vec<usize> {
    let mut counts = vec![0usize; fleet.compute_nodes.len()];
    // ebs-lint: allow(D6) -- commutative integer increments; iteration order cannot affect the counts
    for (&vd, &site) in sites {
        if site == CacheSite::ComputeNode {
            counts[fleet.vms[fleet.vds[vd].vm].cn.index()] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hottest_block::{events_by_vd, hottest_block};
    use crate::location::{hit_oracle, latency_gain};
    use ebs_stack::sim::{StackConfig, StackSim};
    use ebs_workload::{generate, WorkloadConfig};

    fn setup() -> (
        ebs_workload::Dataset,
        FxHashMap<VdId, HottestBlock>,
        Vec<TraceRecord>,
        Vec<bool>,
    ) {
        let ds = generate(&WorkloadConfig::quick(201)).unwrap();
        let hot: FxHashMap<VdId, HottestBlock> = events_by_vd(&ds.fleet, &ds.events)
            .iter()
            .enumerate()
            .filter(|(_, e)| e.len() >= 30)
            .filter_map(|(i, e)| {
                hottest_block(VdId::from_index(i), e, 1024 << 20).map(|hb| (hb.vd, hb))
            })
            .collect();
        let cfg = StackConfig {
            apply_throttle: false,
            ..StackConfig::default()
        };
        let mut sim = StackSim::new(&ds.fleet, cfg);
        let out = sim.run(&ds.events).unwrap();
        let records = out.traces.records().to_vec();
        let hits = hit_oracle(&hot, &records, 0.1);
        (ds, hot, records, hits)
    }

    #[test]
    fn slot_budget_is_respected() {
        let (ds, hot, _, _) = setup();
        for slots in [0usize, 1, 2, 4] {
            let sites = assign_sites(
                &ds.fleet,
                &hot,
                &HybridConfig {
                    cn_slots_per_node: slots,
                    threshold: 0.1,
                },
            );
            let usage = cn_slot_usage(&ds.fleet, &sites);
            for (i, &u) in usage.iter().enumerate() {
                assert!(u <= slots, "cn {i} uses {u} > {slots} slots");
            }
        }
    }

    #[test]
    fn hotter_vds_win_the_cn_slots() {
        let (ds, hot, _, _) = setup();
        let sites = assign_sites(
            &ds.fleet,
            &hot,
            &HybridConfig {
                cn_slots_per_node: 1,
                threshold: 0.0,
            },
        );
        // For every node, any CN-sited VD must be at least as hot as every
        // BS-sited VD of the same node.
        for cn in ds.fleet.compute_nodes.iter() {
            let of_node = |site: CacheSite| -> Vec<f64> {
                sites
                    .iter()
                    .filter(|(&vd, &s)| s == site && ds.fleet.vms[ds.fleet.vds[vd].vm].cn == cn.id)
                    .map(|(vd, _)| hot[vd].access_rate)
                    .collect()
            };
            let cn_rates = of_node(CacheSite::ComputeNode);
            let bs_rates = of_node(CacheSite::BlockServer);
            for &c in &cn_rates {
                for &b in &bs_rates {
                    assert!(c >= b, "node {}: CN {c:.3} < BS {b:.3}", cn.id);
                }
            }
        }
    }

    #[test]
    fn hybrid_gain_sits_between_pure_deployments() {
        let (ds, hot, records, hits) = setup();
        let sites = assign_sites(
            &ds.fleet,
            &hot,
            &HybridConfig {
                cn_slots_per_node: 1,
                threshold: 0.1,
            },
        );
        let hybrid = hybrid_latency_gain(&records, &hits, &sites, Op::Write).unwrap();
        let cn_only = latency_gain(&records, &hits, CacheSite::ComputeNode, Op::Write).unwrap();
        let bs_only = latency_gain(&records, &hits, CacheSite::BlockServer, Op::Write).unwrap();
        assert!(
            hybrid.p50 >= cn_only.p50 - 1e-9,
            "hybrid {:.3} cannot beat all-CN {:.3}",
            hybrid.p50,
            cn_only.p50
        );
        assert!(
            hybrid.p50 <= bs_only.p50 + 1e-9,
            "hybrid {:.3} must not trail all-BS {:.3}",
            hybrid.p50,
            bs_only.p50
        );
    }

    #[test]
    fn more_slots_means_more_gain() {
        let (ds, hot, records, hits) = setup();
        let gain_at = |slots: usize| {
            let sites = assign_sites(
                &ds.fleet,
                &hot,
                &HybridConfig {
                    cn_slots_per_node: slots,
                    threshold: 0.1,
                },
            );
            hybrid_latency_gain(&records, &hits, &sites, Op::Write)
                .unwrap()
                .p50
        };
        assert!(gain_at(4) <= gain_at(1) + 1e-9);
        assert!(gain_at(1) <= gain_at(0) + 1e-9);
    }
}
