//! Hottest-block analysis (§7.1–7.2, Figure 6).
//!
//! Divide each VD's LBA space into fixed-size blocks and find the block
//! with the highest access rate; then characterise it: LBA share,
//! write-to-read ratio, and *hot rate* — the fraction of 5-minute windows
//! in which the block beats its own long-run access rate.

use ebs_core::hash::FxHashMap;
use ebs_core::ids::VdId;
use ebs_core::index::window_runs;
use ebs_core::io::IoEvent;
use ebs_core::topology::Fleet;

/// The block sizes swept by Figure 6/7, in bytes.
pub const BLOCK_SIZES: [u64; 6] = [
    64 << 20,
    128 << 20,
    256 << 20,
    512 << 20,
    1024 << 20,
    2048 << 20,
];

/// Window width for the hot-rate analysis (5 minutes, §7.2).
pub const HOT_RATE_WINDOW_US: u64 = 300 * 1_000_000;

/// Group a time-sorted event stream by VD (order preserved), copying every
/// event into per-VD `Vec`s.
///
/// Production code paths use the zero-copy [`ebs_core::EventIndex`] views
/// instead (`Dataset::index().vd(..)`); this helper remains for tests and
/// as the benchmark baseline the index is measured against.
pub fn events_by_vd(fleet: &Fleet, events: &[IoEvent]) -> Vec<Vec<IoEvent>> {
    let mut out = vec![Vec::new(); fleet.vds.len()];
    for ev in events {
        out[ev.vd.index()].push(*ev);
    }
    out
}

/// The hottest block of one VD at one block size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HottestBlock {
    /// The disk.
    pub vd: VdId,
    /// Block index (offset / block_size).
    pub block: u64,
    /// Block size used.
    pub block_size: u64,
    /// Share of the VD's accesses landing in this block, in `[0, 1]`.
    pub access_rate: f64,
    /// Accesses observed on the VD in total.
    pub total_accesses: usize,
    /// Reads / writes hitting the block.
    pub reads: usize,
    /// Writes hitting the block.
    pub writes: usize,
}

impl HottestBlock {
    /// Share of the VD's LBA space this block covers, in `(0, 1]`.
    pub fn lba_share(&self, capacity_bytes: u64) -> f64 {
        (self.block_size as f64 / capacity_bytes as f64).min(1.0)
    }

    /// Normalized write-to-read ratio of the block (`None` if untouched).
    pub fn wr_ratio(&self) -> Option<f64> {
        ebs_analysis::wr_ratio(self.writes as f64, self.reads as f64)
    }
}

/// Find the hottest block of a VD's event stream; `None` when the stream
/// is empty. Access rate counts IOs (each IO attributed to the block of
/// its starting offset, as the datasets do).
pub fn hottest_block(vd: VdId, events: &[IoEvent], block_size: u64) -> Option<HottestBlock> {
    if events.is_empty() {
        return None;
    }
    let mut counts: FxHashMap<u64, (usize, usize)> = FxHashMap::default(); // block → (reads, writes)
    for ev in events {
        let e = counts.entry(ev.offset / block_size).or_default();
        if ev.op.is_read() {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }
    let (&block, &(reads, writes)) = counts
        // ebs-lint: allow(D6) -- the max key embeds the unique block id, so the winner is iteration-order-independent
        .iter()
        .max_by_key(|&(b, &(r, w))| (r + w, std::cmp::Reverse(*b)))?;
    let total = events.len();
    Some(HottestBlock {
        vd,
        block,
        block_size,
        access_rate: (reads + writes) as f64 / total as f64,
        total_accesses: total,
        reads,
        writes,
    })
}

/// Hot rate of a VD's hottest block (Figure 6(d)): the fraction of
/// 5-minute windows (among windows where the VD saw any traffic) in which
/// the block's within-window access rate exceeds its long-run rate.
/// `None` when fewer than `min_windows` active windows exist.
///
/// `events` must be time-sorted (every per-VD view of the shared event
/// index is): each active window is then one contiguous run, so a single
/// linear scan replaces the old per-window hash map (preserved as
/// [`crate::reference::ref_hot_rate`], which the tests check against).
pub fn hot_rate(
    events: &[IoEvent],
    hb: &HottestBlock,
    window_us: u64,
    min_windows: usize,
) -> Option<f64> {
    if events.is_empty() {
        return None;
    }
    debug_assert!(
        events.windows(2).all(|w| w[0].t_us <= w[1].t_us),
        "hot_rate needs a time-sorted stream"
    );
    let mut windows = 0usize;
    let mut above = 0usize;
    for (_w, run) in window_runs(events, window_us) {
        let blk = run
            .iter()
            .filter(|e| e.offset / hb.block_size == hb.block)
            .count();
        windows += 1;
        if blk as f64 / run.len() as f64 > hb.access_rate {
            above += 1;
        }
    }
    if windows < min_windows {
        return None;
    }
    Some(above as f64 / windows as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_core::ids::QpId;
    use ebs_core::io::Op;

    fn ev(t_us: u64, op: Op, offset: u64) -> IoEvent {
        IoEvent {
            t_us,
            vd: VdId(0),
            qp: QpId(0),
            op,
            size: 4096,
            offset,
        }
    }

    #[test]
    fn hottest_block_finds_the_mode() {
        let bs = 64 << 20;
        let mut events = Vec::new();
        for i in 0..70 {
            events.push(ev(i, Op::Write, bs * 3 + (i % 16) * 4096)); // block 3
        }
        for i in 0..30 {
            events.push(ev(i, Op::Read, bs * 10));
        }
        let hb = hottest_block(VdId(0), &events, bs).unwrap();
        assert_eq!(hb.block, 3);
        assert!((hb.access_rate - 0.7).abs() < 1e-12);
        assert_eq!(hb.writes, 70);
        assert_eq!(hb.reads, 0);
        assert_eq!(hb.wr_ratio(), Some(1.0));
    }

    #[test]
    fn lba_share_is_block_over_capacity() {
        let hb = HottestBlock {
            vd: VdId(0),
            block: 0,
            block_size: 64 << 20,
            access_rate: 0.5,
            total_accesses: 10,
            reads: 5,
            writes: 5,
        };
        let cap = 100u64 << 30;
        assert!((hb.lba_share(cap) - (64.0 / (100.0 * 1024.0))).abs() < 1e-9);
        // Tiny disk: share clamps at 1.
        assert_eq!(hb.lba_share(32 << 20), 1.0);
    }

    #[test]
    fn empty_stream_has_no_hottest_block() {
        assert_eq!(hottest_block(VdId(0), &[], 64 << 20), None);
    }

    #[test]
    fn hot_rate_is_half_for_alternating_windows() {
        let bs = 64u64 << 20;
        let w = HOT_RATE_WINDOW_US;
        let mut events = Vec::new();
        // 4 windows; block 0 gets 100% of accesses in windows 0 and 2,
        // 0% in windows 1 and 3. Long-run rate is 50%.
        for win in 0..4u64 {
            for i in 0..10u64 {
                let offset = if win % 2 == 0 { 0 } else { bs * 5 };
                events.push(ev(win * w + i, Op::Write, offset));
            }
        }
        let hb = hottest_block(VdId(0), &events, bs).unwrap();
        assert!((hb.access_rate - 0.5).abs() < 1e-12);
        let hr = hot_rate(&events, &hb, w, 2).unwrap();
        assert!((hr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hot_rate_requires_enough_windows() {
        let events = vec![ev(0, Op::Read, 0)];
        let hb = hottest_block(VdId(0), &events, 64 << 20).unwrap();
        assert_eq!(hot_rate(&events, &hb, HOT_RATE_WINDOW_US, 2), None);
    }

    #[test]
    fn events_by_vd_partitions() {
        let ds = ebs_workload::generate(&ebs_workload::WorkloadConfig::quick(95)).unwrap();
        let by_vd = events_by_vd(&ds.fleet, &ds.events);
        let total: usize = by_vd.iter().map(Vec::len).sum();
        assert_eq!(total, ds.events.len());
        for (i, evs) in by_vd.iter().enumerate() {
            for e in evs {
                assert_eq!(e.vd.index(), i);
            }
        }
    }

    #[test]
    fn run_scan_hot_rate_matches_the_reference() {
        let ds = ebs_workload::generate(&ebs_workload::WorkloadConfig::quick(95)).unwrap();
        for (i, evs) in events_by_vd(&ds.fleet, &ds.events).iter().enumerate() {
            let Some(hb) = hottest_block(VdId::from_index(i), evs, 64 << 20) else {
                continue;
            };
            for min_windows in [1usize, 2, 8] {
                assert_eq!(
                    hot_rate(evs, &hb, HOT_RATE_WINDOW_US, min_windows),
                    crate::reference::ref_hot_rate(evs, &hb, HOT_RATE_WINDOW_US, min_windows),
                    "VD {i}, min_windows {min_windows}"
                );
            }
        }
    }

    #[test]
    fn generated_hot_blocks_are_write_dominant() {
        // The workload generator's LBA model should reproduce §7.2: most
        // hottest blocks are write-dominant.
        let ds = ebs_workload::generate(&ebs_workload::WorkloadConfig::quick(96)).unwrap();
        let by_vd = events_by_vd(&ds.fleet, &ds.events);
        let mut write_dom = 0;
        let mut total = 0;
        for (i, evs) in by_vd.iter().enumerate() {
            if evs.len() < 50 {
                continue;
            }
            let hb = hottest_block(VdId::from_index(i), evs, 64 << 20).unwrap();
            if let Some(r) = hb.wr_ratio() {
                total += 1;
                if r > ebs_analysis::wr_ratio::WRITE_DOMINANT {
                    write_dom += 1;
                }
            }
        }
        assert!(total > 3, "not enough busy VDs ({total})");
        assert!(
            write_dom * 2 > total,
            "only {write_dom}/{total} hottest blocks write-dominant"
        );
    }
}
