//! Frozen cache (FrozenHot-style, §7.3.1).
//!
//! The frozen cache pins a fixed page range — the VD's hottest block — and
//! never evicts. Management cost collapses (no metadata churn, no eviction
//! under concurrency); the price is that only accesses landing inside the
//! frozen range can hit, which is why small frozen caches lose to FIFO/LRU
//! but large ones (2 GiB) match them with a higher floor (Figure 7(a)).

use crate::policy::{CachePolicy, PAGE_BYTES};
use ebs_core::io::Op;

/// A no-eviction cache pinned to a contiguous page range.
#[derive(Clone, Debug)]
pub struct FrozenCache {
    first_page: u64,
    pages: u64,
}

impl FrozenCache {
    /// Freeze `pages` pages starting at page `first_page`.
    pub fn new(first_page: u64, pages: u64) -> Self {
        assert!(pages > 0, "cache needs capacity");
        Self { first_page, pages }
    }

    /// Freeze the byte range `[start, start + len)` (page-rounded outward).
    pub fn covering_bytes(start: u64, len: u64) -> Self {
        let first_page = start / PAGE_BYTES;
        let last_page = (start + len.max(1) - 1) / PAGE_BYTES;
        Self::new(first_page, last_page - first_page + 1)
    }

    /// Whether `page` falls inside the frozen range.
    pub fn contains(&self, page: u64) -> bool {
        page >= self.first_page && page < self.first_page + self.pages
    }
}

impl CachePolicy for FrozenCache {
    fn name(&self) -> String {
        "FrozenHot".into()
    }

    fn capacity_pages(&self) -> usize {
        self.pages as usize
    }

    fn access(&mut self, page: u64, _op: Op) -> bool {
        self.contains(page)
    }

    fn len(&self) -> usize {
        // The frozen range is always fully resident.
        self.pages as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_only_inside_the_range() {
        let mut c = FrozenCache::new(10, 5);
        assert!(!c.access(9, Op::Read));
        assert!(c.access(10, Op::Read));
        assert!(c.access(14, Op::Write));
        assert!(!c.access(15, Op::Read));
    }

    #[test]
    fn no_eviction_ever() {
        let mut c = FrozenCache::new(0, 4);
        // Hammer pages far outside; the frozen set is untouched.
        for p in 1000..2000 {
            assert!(!c.access(p, Op::Write));
        }
        for p in 0..4 {
            assert!(c.access(p, Op::Read));
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn covering_bytes_rounds_outward() {
        // 6 KiB starting at 2 KiB → pages 0..=1.
        let c = FrozenCache::covering_bytes(2048, 6144);
        assert!(c.contains(0));
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert_eq!(c.capacity_pages(), 2);
    }

    #[test]
    fn covering_zero_length_still_pins_one_page() {
        let c = FrozenCache::covering_bytes(8192, 0);
        assert_eq!(c.capacity_pages(), 1);
        assert!(c.contains(2));
    }
}
