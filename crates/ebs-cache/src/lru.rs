//! Least-Recently-Used cache.

use crate::policy::CachePolicy;
use ebs_core::io::Op;
use std::collections::{BTreeMap, HashMap};

/// LRU: every access refreshes recency; the stalest page is evicted.
/// Implemented with a logical clock: `HashMap` page → stamp plus a
/// `BTreeMap` stamp → page (O(log n) per access).
#[derive(Clone, Debug)]
pub struct LruCache {
    capacity: usize,
    clock: u64,
    stamp_of: HashMap<u64, u64>,
    by_stamp: BTreeMap<u64, u64>,
}

impl LruCache {
    /// An LRU cache of `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs capacity");
        Self {
            capacity,
            clock: 0,
            stamp_of: HashMap::with_capacity(capacity),
            by_stamp: BTreeMap::new(),
        }
    }

    fn refresh(&mut self, page: u64) {
        if let Some(old) = self.stamp_of.insert(page, self.clock) {
            self.by_stamp.remove(&old);
        }
        self.by_stamp.insert(self.clock, page);
        self.clock += 1;
    }
}

impl CachePolicy for LruCache {
    fn name(&self) -> String {
        "LRU".into()
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, page: u64, _op: Op) -> bool {
        let hit = self.stamp_of.contains_key(&page);
        if !hit && self.stamp_of.len() == self.capacity {
            let (&stale_stamp, &victim) =
                self.by_stamp.iter().next().expect("non-empty at capacity");
            self.by_stamp.remove(&stale_stamp);
            self.stamp_of.remove(&victim);
        }
        self.refresh(page);
        hit
    }

    fn len(&self) -> usize {
        self.stamp_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(c: &mut LruCache, page: u64) -> bool {
        c.access(page, Op::Write)
    }

    #[test]
    fn recency_protects_pages() {
        let mut c = LruCache::new(2);
        touch(&mut c, 1);
        touch(&mut c, 2);
        assert!(touch(&mut c, 1)); // 1 is now most recent
        touch(&mut c, 3); // evicts 2 (least recent)
        assert!(touch(&mut c, 1));
        assert!(!touch(&mut c, 2));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = LruCache::new(4);
        for p in 0..1000 {
            touch(&mut c, p % 10);
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn working_set_within_capacity_always_hits() {
        let mut c = LruCache::new(4);
        for p in 0..4 {
            touch(&mut c, p);
        }
        let hits = (0..100).filter(|i| touch(&mut c, i % 4)).count();
        assert_eq!(hits, 100);
    }

    #[test]
    fn internal_maps_stay_consistent() {
        let mut c = LruCache::new(3);
        for i in 0..500u64 {
            touch(&mut c, (i * 7) % 11);
            assert_eq!(c.stamp_of.len(), c.by_stamp.len());
        }
    }

    #[test]
    fn lru_equals_fifo_on_sequential_writes() {
        // The paper's §7.3.1 observation: hot blocks see sequential writes,
        // where LRU degenerates to FIFO (no re-references to exploit).
        let mut lru = LruCache::new(8);
        let mut fifo = crate::fifo::FifoCache::new(8);
        for p in 0..200u64 {
            assert_eq!(lru.access(p, Op::Write), fifo.access(p, Op::Write));
        }
    }
}
