//! Least-Recently-Used cache.

use crate::policy::CachePolicy;
use ebs_core::hash::{fx_map_with_capacity, FxHashMap};
use ebs_core::io::Op;

/// Sentinel slot index for "no node".
const NIL: u32 = u32::MAX;

/// One slab slot of the recency list.
#[derive(Clone, Copy, Debug)]
struct Node {
    page: u64,
    prev: u32,
    next: u32,
}

/// LRU: every access refreshes recency; the stalest page is evicted.
///
/// Implemented as an intrusive doubly-linked list threaded through a slab
/// of pre-allocated nodes, with a deterministic fast-hash map page → slot.
/// Every operation — hit refresh, miss admission, eviction — is O(1):
/// unlink/relink is three pointer writes, and the evicted victim's slot is
/// reused in place for the admitted page (no allocation after warm-up).
/// This replaces the original logical-clock design (`HashMap` stamps plus
/// a `BTreeMap` recency order, O(log n) per access), which survives as
/// [`crate::reference::RefLruCache`] for differential tests and benchmarks.
#[derive(Clone, Debug)]
pub struct LruCache {
    capacity: usize,
    slot_of: FxHashMap<u64, u32>,
    nodes: Vec<Node>,
    /// Most-recently-used slot.
    head: u32,
    /// Least-recently-used slot (the eviction victim).
    tail: u32,
}

impl LruCache {
    /// An LRU cache of `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs capacity");
        Self {
            capacity,
            slot_of: fx_map_with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
        }
    }

    /// Detach `slot` from the list (its prev/next become dangling).
    fn unlink(&mut self, slot: u32) {
        let Node { prev, next, .. } = self.nodes[slot as usize];
        match prev {
            NIL => self.head = next,
            p => self.nodes[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n as usize].prev = prev,
        }
    }

    /// Attach `slot` at the head (most-recent end).
    fn push_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let node = &mut self.nodes[slot as usize];
            node.prev = NIL;
            node.next = old_head;
        }
        match old_head {
            NIL => self.tail = slot,
            h => self.nodes[h as usize].prev = slot,
        }
        self.head = slot;
    }

    /// Resident pages in eviction order (least-recent first).
    pub fn residency(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut slot = self.tail;
        while slot != NIL {
            let node = self.nodes[slot as usize];
            out.push(node.page);
            slot = node.prev;
        }
        out
    }
}

impl CachePolicy for LruCache {
    fn name(&self) -> String {
        "LRU".into()
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, page: u64, _op: Op) -> bool {
        if let Some(&slot) = self.slot_of.get(&page) {
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return true;
        }
        let slot = if self.nodes.len() == self.capacity {
            // At capacity: evict the tail and reuse its slot in place.
            let victim = self.tail;
            let old_page = self.nodes[victim as usize].page;
            self.slot_of.remove(&old_page);
            self.unlink(victim);
            self.nodes[victim as usize].page = page;
            victim
        } else {
            let slot = self.nodes.len() as u32;
            self.nodes.push(Node {
                page,
                prev: NIL,
                next: NIL,
            });
            slot
        };
        self.slot_of.insert(page, slot);
        self.push_front(slot);
        false
    }

    fn len(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(c: &mut LruCache, page: u64) -> bool {
        c.access(page, Op::Write)
    }

    #[test]
    fn recency_protects_pages() {
        let mut c = LruCache::new(2);
        touch(&mut c, 1);
        touch(&mut c, 2);
        assert!(touch(&mut c, 1)); // 1 is now most recent
        touch(&mut c, 3); // evicts 2 (least recent)
        assert!(touch(&mut c, 1));
        assert!(!touch(&mut c, 2));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = LruCache::new(4);
        for p in 0..1000 {
            touch(&mut c, p % 10);
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn working_set_within_capacity_always_hits() {
        let mut c = LruCache::new(4);
        for p in 0..4 {
            touch(&mut c, p);
        }
        let hits = (0..100).filter(|i| touch(&mut c, i % 4)).count();
        assert_eq!(hits, 100);
    }

    #[test]
    fn list_and_map_stay_consistent() {
        let mut c = LruCache::new(3);
        for i in 0..500u64 {
            touch(&mut c, (i * 7) % 11);
            let resident = c.residency();
            assert_eq!(resident.len(), c.slot_of.len());
            for page in resident {
                assert!(c.slot_of.contains_key(&page));
            }
        }
    }

    #[test]
    fn residency_is_in_recency_order() {
        let mut c = LruCache::new(3);
        touch(&mut c, 1);
        touch(&mut c, 2);
        touch(&mut c, 3);
        touch(&mut c, 1); // refresh 1 → order is now 2, 3, 1
        assert_eq!(c.residency(), vec![2, 3, 1]);
        touch(&mut c, 4); // evicts 2
        assert_eq!(c.residency(), vec![3, 1, 4]);
    }

    #[test]
    fn lru_equals_fifo_on_sequential_writes() {
        // The paper's §7.3.1 observation: hot blocks see sequential writes,
        // where LRU degenerates to FIFO (no re-references to exploit).
        let mut lru = LruCache::new(8);
        let mut fifo = crate::fifo::FifoCache::new(8);
        for p in 0..200u64 {
            assert_eq!(lru.access(p, Op::Write), fifo.access(p, Op::Write));
        }
    }

    #[test]
    fn matches_reference_lru_on_a_mixed_stream() {
        let mut new = LruCache::new(16);
        let mut old = crate::reference::RefLruCache::new(16);
        let mut x: u64 = 99;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (x >> 33) % 40;
            assert_eq!(new.access(page, Op::Read), old.access(page, Op::Read));
        }
        assert_eq!(new.residency(), old.residency());
    }
}
