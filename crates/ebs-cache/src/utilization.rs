//! Cache-space utilization (§7.3.2, Figure 7(d)).
//!
//! Caches are provisioned per node with identical sizes, so utilization is
//! driven by how many *cacheable* VDs (hottest-block access rate above a
//! threshold) each node hosts. A wide spread means heavy over-provisioning
//! on some nodes; the paper finds BS-cache counts far tighter than
//! CN-cache counts.

use crate::hottest_block::HottestBlock;
use ebs_core::ids::{BsId, VdId};
use ebs_core::topology::Fleet;
use std::collections::HashMap;
use std::hash::BuildHasher;

/// The paper's cacheable threshold: hottest-block access rate ≥ 25 %.
pub const CACHEABLE_THRESHOLD: f64 = 0.25;

/// VDs whose hottest block clears `threshold`.
pub fn cacheable_vds<S: BuildHasher>(
    hot: &HashMap<VdId, HottestBlock, S>,
    threshold: f64,
) -> Vec<VdId> {
    let mut v: Vec<VdId> = hot
        .iter()
        .filter(|(_, hb)| hb.access_rate >= threshold)
        .map(|(&vd, _)| vd)
        .collect();
    v.sort_unstable();
    v
}

/// Cacheable-VD count per compute node (CN-cache provisioning unit).
pub fn per_cn_counts<S: BuildHasher>(
    fleet: &Fleet,
    hot: &HashMap<VdId, HottestBlock, S>,
    threshold: f64,
) -> Vec<usize> {
    let mut counts = vec![0usize; fleet.compute_nodes.len()];
    for vd in cacheable_vds(hot, threshold) {
        counts[fleet.vms[fleet.vds[vd].vm].cn.index()] += 1;
    }
    counts
}

/// Cacheable-VD count per BlockServer (BS-cache provisioning unit): each
/// cacheable VD's cache lives at the BS hosting its hottest block's
/// segment. `seg_home` overrides the fleet's initial placement when given.
pub fn per_bs_counts<S: BuildHasher>(
    fleet: &Fleet,
    hot: &HashMap<VdId, HottestBlock, S>,
    threshold: f64,
    seg_home: Option<&[BsId]>,
) -> Vec<usize> {
    let mut counts = vec![0usize; fleet.block_servers.len()];
    for vd in cacheable_vds(hot, threshold) {
        let hb = &hot[&vd];
        // Segment containing the hottest block's start offset.
        let offset = hb.block * hb.block_size;
        let Some(seg) = fleet.segment_at(vd, offset.min(fleet.vds[vd].spec.capacity_bytes - 1))
        else {
            continue;
        };
        let bs = match seg_home {
            Some(map) => map[seg.index()],
            None => fleet.seg_home[seg],
        };
        counts[bs.index()] += 1;
    }
    counts
}

/// Population standard deviation of counts.
pub fn std_dev(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<usize>() as f64 / n;
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hottest_block::{events_by_vd, hottest_block};
    use ebs_workload::{generate, WorkloadConfig};

    fn hot_map(
        ds: &ebs_workload::Dataset,
        block_size: u64,
    ) -> ebs_core::hash::FxHashMap<VdId, HottestBlock> {
        events_by_vd(&ds.fleet, &ds.events)
            .iter()
            .enumerate()
            .filter_map(|(i, evs)| {
                hottest_block(VdId::from_index(i), evs, block_size).map(|hb| (hb.vd, hb))
            })
            .collect()
    }

    #[test]
    fn counts_conserve_cacheable_vds() {
        let ds = generate(&WorkloadConfig::quick(97)).unwrap();
        let hot = hot_map(&ds, 256 << 20);
        let cacheable = cacheable_vds(&hot, CACHEABLE_THRESHOLD);
        let cn: usize = per_cn_counts(&ds.fleet, &hot, CACHEABLE_THRESHOLD)
            .iter()
            .sum();
        let bs: usize = per_bs_counts(&ds.fleet, &hot, CACHEABLE_THRESHOLD, None)
            .iter()
            .sum();
        assert_eq!(cn, cacheable.len());
        assert_eq!(bs, cacheable.len());
        assert!(!cacheable.is_empty(), "no cacheable VDs generated");
    }

    #[test]
    fn threshold_filters() {
        let ds = generate(&WorkloadConfig::quick(98)).unwrap();
        let hot = hot_map(&ds, 256 << 20);
        let loose = cacheable_vds(&hot, 0.0).len();
        let strict = cacheable_vds(&hot, 0.9).len();
        assert!(strict <= loose);
        assert_eq!(loose, hot.len());
    }

    #[test]
    fn std_dev_basics() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3, 3, 3]), 0.0);
        assert!((std_dev(&[0, 2]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn custom_placement_changes_bs_counts() {
        let ds = generate(&WorkloadConfig::quick(99)).unwrap();
        let hot = hot_map(&ds, 256 << 20);
        let base = per_bs_counts(&ds.fleet, &hot, 0.0, None);
        // Move everything to BS 0.
        let all_zero = vec![BsId(0); ds.fleet.segments.len()];
        let skewed = per_bs_counts(&ds.fleet, &hot, 0.0, Some(&all_zero));
        assert_eq!(skewed[0], hot.len());
        assert!(std_dev(&skewed) >= std_dev(&base));
    }
}
