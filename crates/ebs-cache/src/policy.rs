//! The cache-policy abstraction of the §7 study.
//!
//! Caches operate on 4 KiB pages (the paper's setting). A policy sees one
//! page access at a time and reports hit or miss; admission and eviction
//! are the policy's business. Both reads and writes go through the cache —
//! the §7.3.2 deployment is a *persistent* cache, so writes hitting it
//! also save the trip down the stack.

use ebs_core::io::Op;

/// Page size used by the study.
pub const PAGE_BYTES: u64 = ebs_core::units::PAGE_BYTES;

/// A page-granular cache policy.
pub trait CachePolicy {
    /// Policy name for reports.
    fn name(&self) -> String;
    /// Capacity in pages.
    fn capacity_pages(&self) -> usize;
    /// Access one page; returns `true` on hit. On miss the policy may
    /// admit the page (and evict per its rules).
    fn access(&mut self, page: u64, op: Op) -> bool;
    /// Pages currently resident.
    fn len(&self) -> usize;
    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Page range `[first, last]` touched by an IO at `offset` of `size` bytes.
pub fn pages_of(offset: u64, size: u32) -> std::ops::RangeInclusive<u64> {
    let first = offset / PAGE_BYTES;
    let last = (offset + size.max(1) as u64 - 1) / PAGE_BYTES;
    first..=last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_of_single_page_io() {
        assert_eq!(pages_of(0, 4096), 0..=0);
        assert_eq!(pages_of(4096, 4096), 1..=1);
    }

    #[test]
    fn pages_of_straddling_io() {
        // 8 KiB at offset 2 KiB touches pages 0 and 2... no: 2 KiB..10 KiB
        // touches pages 0, 1, 2.
        assert_eq!(pages_of(2048, 8192), 0..=2);
    }

    #[test]
    fn pages_of_zero_size_touches_one_page() {
        assert_eq!(pages_of(8192, 0), 2..=2);
    }
}
