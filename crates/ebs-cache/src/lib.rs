//! # ebs-cache — the §7 cache study
//!
//! The paper finds persistent LBA-level hotspots under the VM page cache
//! and asks where and how to cache in the EBS stack. This crate holds the
//! full toolkit:
//!
//! * [`mod@hottest_block`] — find each VD's hottest block at 64 MiB–2 GiB
//!   granularities, its access rate, write/read mix, and ≈50 % *hot rate*
//!   (Figure 6);
//! * [`fifo`] / [`lru`] / [`frozen`] — the three policies of Figure 7(a),
//!   behind the [`policy::CachePolicy`] trait;
//! * [`mod@simulate`] — trace-driven, 4 KiB-page hit-ratio simulation with
//!   caches sized to the hottest block;
//! * [`location`] — CN-cache vs BS-cache latency gains over the stack
//!   simulator's five-stage trace latencies (Figure 7(b/c));
//! * [`utilization`] — per-node cacheable-VD dispersion, the paper's
//!   provisioning-cost argument for the BS side (Figure 7(d));
//! * [`hybrid`] — the deployment §7.3.2 closes on: a few CN-cache slots
//!   per node for the hottest disks, BS-cache as the backup tier;
//! * [`reference`] — the pre-optimization kernels, kept verbatim as
//!   differential-test oracles and in-binary benchmark baselines.
//!
//! The hot kernels are O(1) per access (slab-list LRU, ring FIFO) and all
//! hot-path maps use the deterministic fast hasher from
//! [`ebs_core::hash`]; event streams are borrowed from the shared
//! [`ebs_core::EventIndex`], never copied.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fifo;
pub mod frozen;
pub mod hottest_block;
pub mod hybrid;
pub mod lfu;
pub mod location;
pub mod lru;
pub mod policy;
pub mod reference;
pub mod simulate;
pub mod utilization;

pub use fifo::FifoCache;
pub use frozen::FrozenCache;
pub use hottest_block::{events_by_vd, hot_rate, hottest_block, HottestBlock, BLOCK_SIZES};
pub use hybrid::{assign_sites, hybrid_latency_gain, HybridConfig};
pub use lfu::LfuCache;
pub use location::{hit_oracle, latency_gain, CacheSite, LatencyGain};
pub use lru::LruCache;
pub use policy::CachePolicy;
pub use reference::{ref_hot_rate, RefFifoCache, RefLruCache};
pub use simulate::{build_policy, simulate, Algorithm, HitStats};
pub use utilization::{per_bs_counts, per_cn_counts, CACHEABLE_THRESHOLD};
