//! Least-Frequently-Used cache — an extra baseline beyond the paper's
//! FIFO/LRU/FrozenHot lineup.
//!
//! LFU is the natural foil for FrozenHot: both bet on long-run popularity,
//! but LFU keeps paying metadata cost per access while FrozenHot freezes
//! the decision. On the EBS hot-block pattern (sequential writes, skewed
//! re-reads) LFU approaches FrozenHot's behaviour with FIFO-like overheads
//! — useful context for the §7.3.1 trade-off.

use crate::policy::CachePolicy;
use ebs_core::hash::{fx_map_with_capacity, FxHashMap};
use ebs_core::io::Op;
use std::collections::BTreeSet;

/// LFU with FIFO tie-breaking (classic O(log n) implementation over a
/// `(count, seq)` ordered set).
#[derive(Clone, Debug)]
pub struct LfuCache {
    capacity: usize,
    seq: u64,
    /// page → (count, seq at insertion/last bump)
    meta: FxHashMap<u64, (u64, u64)>,
    /// ordered victims: (count, seq, page)
    order: BTreeSet<(u64, u64, u64)>,
}

impl LfuCache {
    /// An LFU cache of `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs capacity");
        Self {
            capacity,
            seq: 0,
            meta: fx_map_with_capacity(capacity),
            order: BTreeSet::new(),
        }
    }

    fn bump(&mut self, page: u64) {
        let (count, seq) = self.meta[&page];
        self.order.remove(&(count, seq, page));
        self.seq += 1;
        self.meta.insert(page, (count + 1, self.seq));
        self.order.insert((count + 1, self.seq, page));
    }
}

impl CachePolicy for LfuCache {
    fn name(&self) -> String {
        "LFU".into()
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, page: u64, _op: Op) -> bool {
        if self.meta.contains_key(&page) {
            self.bump(page);
            return true;
        }
        if self.meta.len() == self.capacity {
            let &(c, s, victim) = self.order.iter().next().expect("non-empty at capacity");
            self.order.remove(&(c, s, victim));
            self.meta.remove(&victim);
        }
        self.seq += 1;
        self.meta.insert(page, (1, self.seq));
        self.order.insert((1, self.seq, page));
        false
    }

    fn len(&self) -> usize {
        self.meta.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(c: &mut LfuCache, page: u64) -> bool {
        c.access(page, Op::Read)
    }

    #[test]
    fn frequency_protects_pages() {
        let mut c = LfuCache::new(2);
        touch(&mut c, 1);
        touch(&mut c, 1);
        touch(&mut c, 1); // page 1: count 3
        touch(&mut c, 2); // page 2: count 1
        touch(&mut c, 3); // evicts 2 (lowest count), not 1
        assert!(touch(&mut c, 1));
        assert!(!touch(&mut c, 2));
    }

    #[test]
    fn ties_break_fifo() {
        let mut c = LfuCache::new(2);
        touch(&mut c, 1); // count 1, older
        touch(&mut c, 2); // count 1, newer
        touch(&mut c, 3); // evicts 1 (older of the count-1 pair)
        assert!(!touch(&mut c, 1));
        // 2 was still resident before this miss chain started evicting it.
    }

    #[test]
    fn capacity_never_exceeded_and_maps_agree() {
        let mut c = LfuCache::new(5);
        for i in 0..2000u64 {
            touch(&mut c, (i * 13) % 23);
            assert!(c.len() <= 5);
            assert_eq!(c.meta.len(), c.order.len());
        }
    }

    #[test]
    fn hot_set_survives_a_scan() {
        // The LFU selling point: a one-pass scan cannot flush a hot set.
        let mut c = LfuCache::new(8);
        for _ in 0..10 {
            for p in 0..4 {
                touch(&mut c, p);
            }
        }
        for p in 100..200 {
            touch(&mut c, p);
        }
        for p in 0..4 {
            assert!(touch(&mut c, p), "hot page {p} was flushed by the scan");
        }
    }

    #[test]
    fn beats_lru_on_skewed_rereferences() {
        // 80/20 skew with a working set larger than the cache: LFU should
        // hold the popular pages while LRU churns.
        let mut lfu = LfuCache::new(16);
        let mut lru = crate::lru::LruCache::new(16);
        let mut lfu_hits = 0u32;
        let mut lru_hits = 0u32;
        let mut x: u64 = 12345;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = if x % 10 < 8 {
                (x >> 32) % 12
            } else {
                (x >> 32) % 4096
            };
            if lfu.access(page, Op::Read) {
                lfu_hits += 1;
            }
            if lru.access(page, Op::Read) {
                lru_hits += 1;
            }
        }
        assert!(lfu_hits > lru_hits, "LFU {lfu_hits} vs LRU {lru_hits}");
    }
}
