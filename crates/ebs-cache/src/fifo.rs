//! First-In-First-Out cache.

use crate::policy::CachePolicy;
use ebs_core::hash::{fx_set_with_capacity, FxHashSet};
use ebs_core::io::Op;

/// FIFO: pages are evicted in admission order, irrespective of re-use.
///
/// Implemented as a fixed ring buffer plus a deterministic fast-hash
/// residency set: admission overwrites the oldest slot and advances a wrap
/// cursor, so there is no deque shuffling and no allocation after warm-up.
/// The original `VecDeque` + std `HashSet` design survives as
/// [`crate::reference::RefFifoCache`] for differential tests and
/// benchmarks.
#[derive(Clone, Debug)]
pub struct FifoCache {
    capacity: usize,
    ring: Vec<u64>,
    /// Oldest slot once the ring is full — the next eviction target.
    cursor: usize,
    resident: FxHashSet<u64>,
}

impl FifoCache {
    /// A FIFO cache of `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs capacity");
        Self {
            capacity,
            ring: Vec::with_capacity(capacity),
            cursor: 0,
            resident: fx_set_with_capacity(capacity),
        }
    }

    /// Resident pages in eviction order (oldest admitted first).
    pub fn residency(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.ring.len());
        for i in 0..self.ring.len() {
            out.push(self.ring[(self.cursor + i) % self.ring.len()]);
        }
        out
    }
}

impl CachePolicy for FifoCache {
    fn name(&self) -> String {
        "FIFO".into()
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, page: u64, _op: Op) -> bool {
        if self.resident.contains(&page) {
            return true;
        }
        if self.ring.len() == self.capacity {
            let evicted = std::mem::replace(&mut self.ring[self.cursor], page);
            self.resident.remove(&evicted);
            self.cursor = (self.cursor + 1) % self.capacity;
        } else {
            self.ring.push(page);
        }
        self.resident.insert(page);
        false
    }

    fn len(&self) -> usize {
        self.ring.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(c: &mut FifoCache, page: u64) -> bool {
        c.access(page, Op::Read)
    }

    #[test]
    fn hits_after_admission() {
        let mut c = FifoCache::new(2);
        assert!(!touch(&mut c, 1));
        assert!(touch(&mut c, 1));
    }

    #[test]
    fn evicts_in_admission_order() {
        let mut c = FifoCache::new(2);
        touch(&mut c, 1);
        touch(&mut c, 2);
        // Re-touching page 1 does NOT protect it in FIFO.
        assert!(touch(&mut c, 1));
        touch(&mut c, 3); // evicts 1 (oldest admitted)
        assert!(!touch(&mut c, 1)); // this miss re-admits 1, evicting 2
        assert!(!touch(&mut c, 2)); // and this one re-admits 2, evicting 3
        assert!(touch(&mut c, 1)); // 1 survived both: [1, 2] resident
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = FifoCache::new(3);
        for p in 0..100 {
            touch(&mut c, p);
            assert!(c.len() <= 3);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.capacity_pages(), 3);
    }

    #[test]
    fn sequential_stream_never_hits() {
        let mut c = FifoCache::new(8);
        let hits = (0..100).filter(|&p| touch(&mut c, p)).count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn residency_is_in_admission_order_across_wraps() {
        let mut c = FifoCache::new(3);
        for p in [1, 2, 3] {
            touch(&mut c, p);
        }
        assert_eq!(c.residency(), vec![1, 2, 3]);
        touch(&mut c, 4); // wraps: evicts 1
        assert_eq!(c.residency(), vec![2, 3, 4]);
        touch(&mut c, 5); // evicts 2
        assert_eq!(c.residency(), vec![3, 4, 5]);
    }

    #[test]
    fn matches_reference_fifo_on_a_mixed_stream() {
        let mut new = FifoCache::new(16);
        let mut old = crate::reference::RefFifoCache::new(16);
        let mut x: u64 = 7;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (x >> 33) % 40;
            assert_eq!(new.access(page, Op::Read), old.access(page, Op::Read));
        }
        assert_eq!(new.residency(), old.residency());
    }
}
