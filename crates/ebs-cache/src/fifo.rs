//! First-In-First-Out cache.

use crate::policy::CachePolicy;
use ebs_core::io::Op;
use std::collections::{HashSet, VecDeque};

/// FIFO: pages are evicted in admission order, irrespective of re-use.
#[derive(Clone, Debug)]
pub struct FifoCache {
    capacity: usize,
    queue: VecDeque<u64>,
    resident: HashSet<u64>,
}

impl FifoCache {
    /// A FIFO cache of `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs capacity");
        Self {
            capacity,
            queue: VecDeque::with_capacity(capacity),
            resident: HashSet::with_capacity(capacity),
        }
    }
}

impl CachePolicy for FifoCache {
    fn name(&self) -> String {
        "FIFO".into()
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, page: u64, _op: Op) -> bool {
        if self.resident.contains(&page) {
            return true;
        }
        if self.queue.len() == self.capacity {
            let evicted = self.queue.pop_front().expect("non-empty at capacity");
            self.resident.remove(&evicted);
        }
        self.queue.push_back(page);
        self.resident.insert(page);
        false
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(c: &mut FifoCache, page: u64) -> bool {
        c.access(page, Op::Read)
    }

    #[test]
    fn hits_after_admission() {
        let mut c = FifoCache::new(2);
        assert!(!touch(&mut c, 1));
        assert!(touch(&mut c, 1));
    }

    #[test]
    fn evicts_in_admission_order() {
        let mut c = FifoCache::new(2);
        touch(&mut c, 1);
        touch(&mut c, 2);
        // Re-touching page 1 does NOT protect it in FIFO.
        assert!(touch(&mut c, 1));
        touch(&mut c, 3); // evicts 1 (oldest admitted)
        assert!(!touch(&mut c, 1)); // this miss re-admits 1, evicting 2
        assert!(!touch(&mut c, 2)); // and this one re-admits 2, evicting 3
        assert!(touch(&mut c, 1)); // 1 survived both: [1, 2] resident
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = FifoCache::new(3);
        for p in 0..100 {
            touch(&mut c, p);
            assert!(c.len() <= 3);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.capacity_pages(), 3);
    }

    #[test]
    fn sequential_stream_never_hits() {
        let mut c = FifoCache::new(8);
        let hits = (0..100).filter(|&p| touch(&mut c, p)).count();
        assert_eq!(hits, 0);
    }
}
