//! Cache deployment location: CN-cache versus BS-cache (§7.3.2).
//!
//! A compute-node cache serves hits without touching the storage cluster
//! (latency = compute stage only); a BlockServer cache still pays the
//! frontend network and BS processing but skips the backend network and
//! ChunkServer. The *latency gain* at percentile q is
//! `q%ile(with cache) / q%ile(without)` — smaller is better.

use crate::frozen::FrozenCache;
use crate::hottest_block::HottestBlock;
use crate::policy::pages_of;
use ebs_core::hash::FxHashMap;
use ebs_core::ids::VdId;
use ebs_core::io::Op;
use ebs_core::trace::TraceRecord;
use std::collections::HashMap;
use std::hash::BuildHasher;

/// Where the frozen cache is deployed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CacheSite {
    /// On the compute node (hits skip the entire storage cluster).
    ComputeNode,
    /// On the BlockServer (hits skip the backend network + ChunkServer).
    BlockServer,
}

impl CacheSite {
    /// Both sites.
    pub const ALL: [CacheSite; 2] = [CacheSite::ComputeNode, CacheSite::BlockServer];

    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            CacheSite::ComputeNode => "CN-cache",
            CacheSite::BlockServer => "BS-cache",
        }
    }
}

/// Latency gain at the percentiles Figure 7(b/c) reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyGain {
    /// Gain at the 0th percentile (best case).
    pub p0: f64,
    /// Gain at the median.
    pub p50: f64,
    /// Gain at the 99th percentile (tail).
    pub p99: f64,
}

/// Per-IO cache-hit oracle: which trace records hit a frozen cache pinned
/// at each cacheable VD's hottest block. VDs whose hottest-block access
/// rate is below `threshold` get no cache.
///
/// Builds each cacheable VD's frozen range once, then scans the records in
/// a single pass — no intermediate event copies (the old version cloned
/// the full record stream into `IoEvent`s, then per-VD sub-vectors).
pub fn hit_oracle<S: BuildHasher>(
    hot: &HashMap<VdId, HottestBlock, S>,
    records: &[TraceRecord],
    threshold: f64,
) -> Vec<bool> {
    let caches: FxHashMap<VdId, FrozenCache> = hot
        // ebs-lint: allow(D6) -- collects into a keyed map; insertion order cannot affect its contents
        .iter()
        .filter(|(_, hb)| hb.access_rate >= threshold)
        .map(|(&vd, hb)| {
            (
                vd,
                FrozenCache::covering_bytes(hb.block * hb.block_size, hb.block_size),
            )
        })
        .collect();
    records
        .iter()
        .map(|r| match caches.get(&r.vd) {
            // An IO is a hit when every page it touches is frozen.
            Some(cache) => pages_of(r.offset, r.size).all(|p| cache.contains(p)),
            None => false,
        })
        .collect()
}

/// Latency gain of deploying frozen caches at `site`, for `op` traffic,
/// over the given trace records and hit oracle. `None` when no records of
/// that op exist.
pub fn latency_gain(
    records: &[TraceRecord],
    hits: &[bool],
    site: CacheSite,
    op: Op,
) -> Option<LatencyGain> {
    assert_eq!(records.len(), hits.len());
    let mut without = Vec::new();
    let mut with = Vec::new();
    for (r, &hit) in records.iter().zip(hits) {
        if r.op != op {
            continue;
        }
        let full = r.lat.total_us();
        without.push(full);
        with.push(if hit {
            match site {
                CacheSite::ComputeNode => r.lat.cn_cache_us(),
                CacheSite::BlockServer => r.lat.bs_cache_us(),
            }
        } else {
            full
        });
    }
    if without.is_empty() {
        return None;
    }
    let gain = |q: f64| -> f64 {
        let w = ebs_analysis::quantile(&with, q).expect("non-empty");
        let o = ebs_analysis::quantile(&without, q).expect("non-empty");
        if o > 0.0 {
            w / o
        } else {
            1.0
        }
    };
    Some(LatencyGain {
        p0: gain(0.0),
        p50: gain(0.5),
        p99: gain(0.99),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_core::ids::*;
    use ebs_core::trace::StageLatency;

    fn rec(i: u64, vd: u32, op: Op, offset: u64, tail: bool) -> TraceRecord {
        let lat = StageLatency {
            compute_us: 10.0,
            frontend_us: 40.0,
            block_server_us: 10.0,
            backend_us: 20.0,
            chunk_server_us: if tail { 2000.0 } else { 120.0 },
        };
        TraceRecord {
            id: TraceId(i),
            t_us: i,
            op,
            size: 4096,
            offset,
            qp: QpId(0),
            vd: VdId(vd),
            vm: VmId(0),
            cn: CnId(0),
            wt: WtId(0),
            seg: SegId(0),
            bs: BsId(0),
            sn: SnId(0),
            lat,
        }
    }

    fn hot_for(vd: u32, rate: f64) -> (VdId, HottestBlock) {
        (
            VdId(vd),
            HottestBlock {
                vd: VdId(vd),
                block: 0,
                block_size: 64 << 20,
                access_rate: rate,
                total_accesses: 100,
                reads: 10,
                writes: 90,
            },
        )
    }

    #[test]
    fn oracle_marks_in_block_ios_of_cacheable_vds() {
        let hot: FxHashMap<_, _> = [hot_for(0, 0.5)].into_iter().collect();
        let records = vec![
            rec(0, 0, Op::Write, 0, false),       // in block → hit
            rec(1, 0, Op::Write, 1 << 30, false), // outside → miss
            rec(2, 1, Op::Write, 0, false),       // VD without cache
        ];
        let hits = hit_oracle(&hot, &records, 0.25);
        assert_eq!(hits, vec![true, false, false]);
    }

    #[test]
    fn threshold_disables_cold_vds() {
        let hot: FxHashMap<_, _> = [hot_for(0, 0.1)].into_iter().collect();
        let records = vec![rec(0, 0, Op::Write, 0, false)];
        let hits = hit_oracle(&hot, &records, 0.25);
        assert_eq!(hits, vec![false]);
    }

    #[test]
    fn cn_gain_beats_bs_gain() {
        let hot: FxHashMap<_, _> = [hot_for(0, 0.9)].into_iter().collect();
        let records: Vec<TraceRecord> = (0..100).map(|i| rec(i, 0, Op::Write, 0, false)).collect();
        let hits = hit_oracle(&hot, &records, 0.25);
        let cn = latency_gain(&records, &hits, CacheSite::ComputeNode, Op::Write).unwrap();
        let bs = latency_gain(&records, &hits, CacheSite::BlockServer, Op::Write).unwrap();
        assert!(cn.p50 < bs.p50, "CN {cn:?} vs BS {bs:?}");
        assert!(bs.p50 < 1.0);
    }

    #[test]
    fn tail_unaffected_when_tail_ios_miss() {
        // 99 cached fast IOs + tail IOs outside the hot block: the 99%ile
        // barely moves (the Figure 7(b/c) tail result).
        let hot: FxHashMap<_, _> = [hot_for(0, 0.9)].into_iter().collect();
        let mut records: Vec<TraceRecord> =
            (0..95).map(|i| rec(i, 0, Op::Write, 0, false)).collect();
        for i in 95..100 {
            records.push(rec(i, 0, Op::Write, 1 << 30, true));
        }
        let hits = hit_oracle(&hot, &records, 0.25);
        let g = latency_gain(&records, &hits, CacheSite::ComputeNode, Op::Write).unwrap();
        assert!(g.p50 < 0.5, "median should improve: {g:?}");
        assert!(g.p99 > 0.9, "tail should not: {g:?}");
    }

    #[test]
    fn missing_op_returns_none() {
        let records = vec![rec(0, 0, Op::Write, 0, false)];
        let hits = vec![false];
        assert!(latency_gain(&records, &hits, CacheSite::ComputeNode, Op::Read).is_none());
    }
}
