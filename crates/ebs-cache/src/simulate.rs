//! Trace-driven cache simulation (§7.3.1, Figure 7(a)).
//!
//! Protocol from the paper: 4 KiB pages; the cache is sized to the VD's
//! hottest block; the frozen cache is pinned at the hottest block's LBA.
//! Hit ratios are measured per VD over its sampled IO stream.

use crate::fifo::FifoCache;
use crate::frozen::FrozenCache;
use crate::hottest_block::HottestBlock;
use crate::lru::LruCache;
use crate::policy::{pages_of, CachePolicy, PAGE_BYTES};
use ebs_core::io::IoEvent;

/// The three algorithms compared by Figure 7(a).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// First-in-first-out.
    Fifo,
    /// Least-recently-used.
    Lru,
    /// Frozen cache pinned at the hottest block.
    Frozen,
}

impl Algorithm {
    /// All three, in the figure's order.
    pub const ALL: [Algorithm; 3] = [Algorithm::Fifo, Algorithm::Lru, Algorithm::Frozen];

    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Fifo => "FIFO",
            Algorithm::Lru => "LRU",
            Algorithm::Frozen => "FrozenHot",
        }
    }
}

/// Result of simulating one policy over one VD.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HitStats {
    /// Page accesses offered.
    pub accesses: u64,
    /// Page hits.
    pub hits: u64,
}

impl HitStats {
    /// Hit ratio in `[0, 1]`; `None` when no accesses were offered.
    pub fn ratio(&self) -> Option<f64> {
        if self.accesses == 0 {
            None
        } else {
            Some(self.hits as f64 / self.accesses as f64)
        }
    }
}

/// Cache pages per the paper's protocol for a VD whose hottest block is
/// `hb`: the cache is sized to the hottest block.
fn policy_pages(hb: &HottestBlock) -> usize {
    (hb.block_size / PAGE_BYTES).max(1) as usize
}

/// Build the policy instance for `algo`, sized/placed per the paper's
/// protocol for a VD whose hottest block is `hb`.
///
/// This is the dynamic-dispatch entry point for callers that genuinely
/// need a policy chosen at runtime; the hot sweep ([`sweep_policies`])
/// builds concrete policy types instead so `simulate` monomorphizes.
pub fn build_policy(algo: Algorithm, hb: &HottestBlock) -> Box<dyn CachePolicy> {
    match algo {
        Algorithm::Fifo => Box::new(FifoCache::new(policy_pages(hb))),
        Algorithm::Lru => Box::new(LruCache::new(policy_pages(hb))),
        Algorithm::Frozen => Box::new(FrozenCache::covering_bytes(
            hb.block * hb.block_size,
            hb.block_size,
        )),
    }
}

/// Run one policy over a VD's event stream, counting page-level hits.
///
/// Generic over the policy type: called with a concrete `FifoCache` /
/// `LruCache` / `FrozenCache` the access loop monomorphizes and inlines;
/// `&mut dyn CachePolicy` still works for runtime-chosen policies.
pub fn simulate<P: CachePolicy + ?Sized>(policy: &mut P, events: &[IoEvent]) -> HitStats {
    let mut stats = HitStats {
        accesses: 0,
        hits: 0,
    };
    for ev in events {
        for page in pages_of(ev.offset, ev.size) {
            stats.accesses += 1;
            if policy.access(page, ev.op) {
                stats.hits += 1;
            }
        }
    }
    stats
}

/// Simulate every algorithm of Figure 7(a) over one **shared, immutable**
/// event stream. Policy state is private per run; the stream is only ever
/// borrowed, so a policy × capacity sweep never clones events. Each
/// algorithm runs through a statically-dispatched `simulate` instance.
pub fn sweep_policies(hb: &HottestBlock, events: &[IoEvent]) -> Vec<(Algorithm, HitStats)> {
    let obs_on = ebs_obs::enabled();
    Algorithm::ALL
        .iter()
        .map(|&algo| {
            let (stats, resident) = match algo {
                Algorithm::Fifo => {
                    let mut policy = FifoCache::new(policy_pages(hb));
                    (simulate(&mut policy, events), policy.len())
                }
                Algorithm::Lru => {
                    let mut policy = LruCache::new(policy_pages(hb));
                    (simulate(&mut policy, events), policy.len())
                }
                Algorithm::Frozen => {
                    let mut policy =
                        FrozenCache::covering_bytes(hb.block * hb.block_size, hb.block_size);
                    (simulate(&mut policy, events), policy.len())
                }
            };
            if obs_on {
                // FIFO/LRU admit every miss, so evictions are the misses
                // that no longer fit; FrozenHot never admits or evicts.
                let misses = stats.accesses - stats.hits;
                let evictions = match algo {
                    Algorithm::Fifo | Algorithm::Lru => {
                        misses - resident.min(misses as usize) as u64
                    }
                    Algorithm::Frozen => 0,
                };
                let key = algo.label().to_lowercase();
                let mut reg = ebs_obs::Registry::new();
                reg.counter_add(&format!("cache.{key}.accesses"), stats.accesses);
                reg.counter_add(&format!("cache.{key}.hits"), stats.hits);
                reg.counter_add(&format!("cache.{key}.misses"), misses);
                reg.counter_add(&format!("cache.{key}.evictions"), evictions);
                ebs_obs::merge(&reg);
            }
            (algo, stats)
        })
        .collect()
}

/// Per-page hit flags for one VD under a frozen cache at its hottest block
/// — used by the latency-gain study to decide which *IOs* are cache hits
/// (an IO is a hit when every page it touches is frozen).
pub fn frozen_io_hits(hb: &HottestBlock, events: &[IoEvent]) -> Vec<bool> {
    let cache = FrozenCache::covering_bytes(hb.block * hb.block_size, hb.block_size);
    events
        .iter()
        .map(|ev| pages_of(ev.offset, ev.size).all(|p| cache.contains(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hottest_block::hottest_block;
    use ebs_core::ids::{QpId, VdId};
    use ebs_core::io::Op;

    fn ev(t: u64, op: Op, offset: u64, size: u32) -> IoEvent {
        IoEvent {
            t_us: t,
            vd: VdId(0),
            qp: QpId(0),
            op,
            size,
            offset,
        }
    }

    fn hot_write_stream(block_size: u64) -> Vec<IoEvent> {
        // 80% of IOs loop inside one block; 20% scattered far away.
        let mut events = Vec::new();
        for i in 0..500u64 {
            if i % 5 == 4 {
                events.push(ev(i, Op::Read, (i * 131) % 64 * (1 << 30), 4096));
            } else {
                events.push(ev(
                    i,
                    Op::Write,
                    block_size * 2 + (i * 4096) % block_size,
                    4096,
                ));
            }
        }
        events
    }

    #[test]
    fn frozen_hits_exactly_the_hot_block() {
        let bs = 64u64 << 20;
        let events = hot_write_stream(bs);
        let hb = hottest_block(VdId(0), &events, bs).unwrap();
        assert_eq!(hb.block, 2);
        let mut frozen = build_policy(Algorithm::Frozen, &hb);
        let stats = simulate(frozen.as_mut(), &events);
        let ratio = stats.ratio().unwrap();
        assert!((ratio - 0.8).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn fifo_and_lru_agree_on_sequential_hot_writes() {
        let bs = 64u64 << 20;
        let events = hot_write_stream(bs);
        let hb = hottest_block(VdId(0), &events, bs).unwrap();
        let mut fifo = build_policy(Algorithm::Fifo, &hb);
        let mut lru = build_policy(Algorithm::Lru, &hb);
        let f = simulate(fifo.as_mut(), &events).ratio().unwrap();
        let l = simulate(lru.as_mut(), &events).ratio().unwrap();
        assert!((f - l).abs() < 0.05, "FIFO {f} vs LRU {l}");
    }

    #[test]
    fn multi_page_ios_count_each_page() {
        let hb = HottestBlock {
            vd: VdId(0),
            block: 0,
            block_size: 64 << 20,
            access_rate: 1.0,
            total_accesses: 1,
            reads: 0,
            writes: 1,
        };
        let mut lru = build_policy(Algorithm::Lru, &hb);
        // One 64 KiB IO = 16 page accesses, all cold.
        let stats = simulate(lru.as_mut(), &[ev(0, Op::Write, 0, 65536)]);
        assert_eq!(stats.accesses, 16);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn empty_stream_has_no_ratio() {
        let stats = HitStats {
            accesses: 0,
            hits: 0,
        };
        assert_eq!(stats.ratio(), None);
    }

    #[test]
    fn frozen_io_hits_require_all_pages_frozen() {
        let bs = 64u64 << 20;
        let hb = HottestBlock {
            vd: VdId(0),
            block: 1,
            block_size: bs,
            access_rate: 1.0,
            total_accesses: 3,
            reads: 0,
            writes: 3,
        };
        let events = vec![
            ev(0, Op::Write, bs, 4096),            // fully inside
            ev(1, Op::Write, bs * 2 - 4096, 8192), // straddles the end
            ev(2, Op::Write, 0, 4096),             // outside
        ];
        assert_eq!(frozen_io_hits(&hb, &events), vec![true, false, false]);
    }
}
