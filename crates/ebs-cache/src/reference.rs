//! Reference implementations of the cache kernels, kept verbatim from
//! before the O(1) rewrite.
//!
//! These are deliberately the *old* data structures — logical-clock LRU
//! over `HashMap` + `BTreeMap`, FIFO over `VecDeque` + `HashSet`, hot-rate
//! over a per-window `HashMap` — preserved for two jobs:
//!
//! * **Differential testing.** The property tests in `tests/properties.rs`
//!   replay random access streams through the production kernels and these
//!   references and require identical hit/miss sequences and final
//!   residency.
//! * **Honest benchmarking.** `bench --mode hotpath` runs before/after
//!   pairs in one binary on one host, so the recorded speedups compare the
//!   committed kernels against exactly the code they replaced.
//!
//! Nothing on the `bin/all` production path may call into this module.

use crate::policy::CachePolicy;
use ebs_core::hash::{fx_map_with_capacity, fx_set_with_capacity, FxHashMap, FxHashSet};
use ebs_core::io::{IoEvent, Op};
use std::collections::{BTreeMap, VecDeque};

/// The pre-rewrite LRU: logical clock with `HashMap` page → stamp plus a
/// `BTreeMap` stamp → page (O(log n) per access).
#[derive(Clone, Debug)]
pub struct RefLruCache {
    capacity: usize,
    clock: u64,
    stamp_of: FxHashMap<u64, u64>,
    by_stamp: BTreeMap<u64, u64>,
}

impl RefLruCache {
    /// An LRU cache of `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs capacity");
        Self {
            capacity,
            clock: 0,
            stamp_of: fx_map_with_capacity(capacity),
            by_stamp: BTreeMap::new(),
        }
    }

    fn refresh(&mut self, page: u64) {
        if let Some(old) = self.stamp_of.insert(page, self.clock) {
            self.by_stamp.remove(&old);
        }
        self.by_stamp.insert(self.clock, page);
        self.clock += 1;
    }

    /// Resident pages in eviction order (least-recent first).
    pub fn residency(&self) -> Vec<u64> {
        self.by_stamp.values().copied().collect()
    }
}

impl CachePolicy for RefLruCache {
    fn name(&self) -> String {
        "LRU(ref)".into()
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, page: u64, _op: Op) -> bool {
        let hit = self.stamp_of.contains_key(&page);
        if !hit && self.stamp_of.len() == self.capacity {
            let (&stale_stamp, &victim) =
                self.by_stamp.iter().next().expect("non-empty at capacity");
            self.by_stamp.remove(&stale_stamp);
            self.stamp_of.remove(&victim);
        }
        self.refresh(page);
        hit
    }

    fn len(&self) -> usize {
        self.stamp_of.len()
    }
}

/// The pre-rewrite FIFO: `VecDeque` admission queue plus a redundant
/// `HashSet` residency map.
#[derive(Clone, Debug)]
pub struct RefFifoCache {
    capacity: usize,
    queue: VecDeque<u64>,
    resident: FxHashSet<u64>,
}

impl RefFifoCache {
    /// A FIFO cache of `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache needs capacity");
        Self {
            capacity,
            queue: VecDeque::with_capacity(capacity),
            resident: fx_set_with_capacity(capacity),
        }
    }

    /// Resident pages in eviction order (oldest admitted first).
    pub fn residency(&self) -> Vec<u64> {
        self.queue.iter().copied().collect()
    }
}

impl CachePolicy for RefFifoCache {
    fn name(&self) -> String {
        "FIFO(ref)".into()
    }

    fn capacity_pages(&self) -> usize {
        self.capacity
    }

    fn access(&mut self, page: u64, _op: Op) -> bool {
        if self.resident.contains(&page) {
            return true;
        }
        if self.queue.len() == self.capacity {
            let evicted = self.queue.pop_front().expect("non-empty at capacity");
            self.resident.remove(&evicted);
        }
        self.queue.push_back(page);
        self.resident.insert(page);
        false
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// The pre-rewrite hot-rate: bucket every event into a per-window
/// `HashMap`, then count windows where the block beats its long-run rate.
/// Works on unsorted streams (the production run-scan requires time order).
pub fn ref_hot_rate(
    events: &[IoEvent],
    hb: &crate::hottest_block::HottestBlock,
    window_us: u64,
    min_windows: usize,
) -> Option<f64> {
    if events.is_empty() {
        return None;
    }
    let mut per_window: FxHashMap<u64, (usize, usize)> = FxHashMap::default(); // window → (block, total)
    for ev in events {
        let w = ev.t_us / window_us;
        let e = per_window.entry(w).or_default();
        if ev.offset / hb.block_size == hb.block {
            e.0 += 1;
        }
        e.1 += 1;
    }
    if per_window.len() < min_windows {
        return None;
    }
    let above = per_window
        .values()
        .filter(|&&(blk, tot)| blk as f64 / tot as f64 > hb.access_rate)
        .count();
    Some(above as f64 / per_window.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_lru_recency_protects_pages() {
        let mut c = RefLruCache::new(2);
        c.access(1, Op::Write);
        c.access(2, Op::Write);
        assert!(c.access(1, Op::Write));
        c.access(3, Op::Write); // evicts 2
        assert!(c.access(1, Op::Write));
        assert!(!c.access(2, Op::Write));
        assert_eq!(c.residency().len(), 2);
    }

    #[test]
    fn ref_fifo_evicts_in_admission_order() {
        let mut c = RefFifoCache::new(2);
        c.access(1, Op::Read);
        c.access(2, Op::Read);
        assert!(c.access(1, Op::Read)); // no recency protection
        c.access(3, Op::Read); // evicts 1
        assert_eq!(c.residency(), vec![2, 3]);
    }
}
