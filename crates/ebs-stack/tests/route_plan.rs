//! Property tests pinning [`ebs_stack::RoutePlan`] to the per-event
//! resolution it replaces: for every event of a generated fleet, the
//! plan's columns must equal what `Binding::wt_of`, `Fleet::cn_of_qp`,
//! `Fleet::segment_at`, the segment map, and `Fleet::sn_of_seg` would
//! have produced one call at a time.

use ebs_stack::{Binding, RoutePlan, SegmentMap};
use ebs_workload::{generate, WorkloadConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Column-for-column agreement with the scalar accessors.
    #[test]
    fn plan_matches_scalar_resolution(seed in 0u64..1000) {
        let ds = generate(&WorkloadConfig::quick(seed)).unwrap();
        let binding = Binding::from_fleet(&ds.fleet);
        let seg_map = SegmentMap::from_fleet(&ds.fleet);
        let plan = RoutePlan::build(&ds.fleet, &binding, &seg_map, &ds.events).unwrap();
        prop_assert_eq!(plan.len(), ds.events.len());
        for (i, ev) in ds.events.iter().enumerate() {
            let seg = ds.fleet.segment_at(ev.vd, ev.offset).unwrap();
            let bs = seg_map.as_slice()[seg.index()];
            prop_assert_eq!(plan.wt()[i], binding.wt_of(ev.qp));
            prop_assert_eq!(plan.cn()[i], ds.fleet.cn_of_qp(ev.qp));
            prop_assert_eq!(plan.seg()[i], seg);
            prop_assert_eq!(plan.bs()[i], bs);
            prop_assert_eq!(plan.sn()[i], ds.fleet.sn_of_seg(seg));
        }
    }

    /// The shared-index constructor resolves identically to the
    /// from-scratch one.
    #[test]
    fn plan_with_index_matches_plain_build(seed in 0u64..1000) {
        let ds = generate(&WorkloadConfig::quick(seed)).unwrap();
        let binding = Binding::from_fleet(&ds.fleet);
        let seg_map = SegmentMap::from_fleet(&ds.fleet);
        let plain = RoutePlan::build(&ds.fleet, &binding, &seg_map, &ds.events).unwrap();
        let idx = ds.index();
        let via_idx =
            RoutePlan::build_with_index(&ds.fleet, &binding, &seg_map, &ds.events, idx).unwrap();
        prop_assert_eq!(plain.wt(), via_idx.wt());
        prop_assert_eq!(plain.cn(), via_idx.cn());
        prop_assert_eq!(plain.seg(), via_idx.seg());
        prop_assert_eq!(plain.bs(), via_idx.bs());
        prop_assert_eq!(plain.sn(), via_idx.sn());
    }

    /// Swapping two out-of-order timestamps must be rejected exactly like
    /// the reference simulator rejects them.
    #[test]
    fn unsorted_events_are_rejected(seed in 0u64..1000, pivot in 1usize..64) {
        let ds = generate(&WorkloadConfig::quick(seed)).unwrap();
        let mut events = ds.events.clone();
        let pivot = pivot % (events.len() - 1) + 1;
        // Force a strict inversion at the pivot.
        events[pivot - 1].t_us = events[pivot].t_us + 1;
        let binding = Binding::from_fleet(&ds.fleet);
        let seg_map = SegmentMap::from_fleet(&ds.fleet);
        let err = RoutePlan::build(&ds.fleet, &binding, &seg_map, &events).unwrap_err();
        prop_assert!(err.to_string().contains("time-sorted"));
    }

    /// An offset past the VD's capacity surfaces as an error, never a
    /// panic (route is in the lint D3 total set).
    #[test]
    fn out_of_capacity_offsets_are_rejected(seed in 0u64..1000) {
        let ds = generate(&WorkloadConfig::quick(seed)).unwrap();
        let mut events = ds.events.clone();
        let last = events.len() - 1;
        let vd = events[last].vd;
        let spec = &ds.fleet.vds[vd].spec;
        events[last].offset = spec.capacity_bytes;
        let binding = Binding::from_fleet(&ds.fleet);
        let seg_map = SegmentMap::from_fleet(&ds.fleet);
        let err = RoutePlan::build(&ds.fleet, &binding, &seg_map, &events).unwrap_err();
        prop_assert!(err.to_string().contains("offset"));
    }
}

/// Deterministic (non-property) pin: one plan serves many simulator runs.
#[test]
fn one_plan_serves_many_runs() {
    use ebs_stack::sim::{StackConfig, StackSim};
    let ds = generate(&WorkloadConfig::quick(41)).unwrap();
    let sim = StackSim::new(&ds.fleet, StackConfig::default());
    let plan = sim.plan(&ds.events).unwrap();
    let a = sim.run_planned(&ds.events, &plan).unwrap();
    let b = sim.run_planned(&ds.events, &plan).unwrap();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.traces.records(), b.traces.records());
}
