//! Precomputed per-event routing: the staged simulator's pass zero.
//!
//! Routing an IO — QP → worker thread, QP → compute node, (VD, offset) →
//! segment → BlockServer → storage node — depends only on the fleet, the
//! QP binding, and the segment placement, never on simulator
//! configuration. [`RoutePlan`] resolves it once for a whole event slice
//! into structure-of-arrays columns that every simulation run *borrows*:
//! config sweeps that keep the binding and segment map fixed (latency
//! ablations, replication studies) share one plan instead of re-running
//! `segment_at` per event per config point.
//!
//! This module is in the ebs-lint D3 *total* set: it must never panic, so
//! every lookup is `get`-based and malformed input surfaces as
//! [`EbsError`].

use crate::hypervisor::Binding;
use crate::segment::SegmentMap;
use ebs_core::error::EbsError;
use ebs_core::ids::{BsId, CnId, SegId, SnId, WtId};
use ebs_core::index::EventIndex;
use ebs_core::io::IoEvent;
use ebs_core::topology::Fleet;
use ebs_core::units::SEGMENT_BYTES;

/// Validate that `events` are in non-decreasing time order.
///
/// The simulator's state machines (WT queues, token buckets, link EWMAs)
/// require it; hoisting the O(n) scan here lets sweep callers validate a
/// shared slice once instead of once per config point.
pub fn ensure_time_sorted(events: &[IoEvent]) -> Result<(), EbsError> {
    let sorted = events
        .iter()
        .zip(events.iter().skip(1))
        .all(|(a, b)| a.t_us <= b.t_us);
    if sorted {
        Ok(())
    } else {
        Err(EbsError::invalid_config("events must be time-sorted"))
    }
}

/// Structure-of-arrays routing table: one entry per event, columns for the
/// five stack entities an IO traverses. Built once per
/// (fleet, binding, segment map); borrowed by every run over the slice.
#[derive(Clone, Debug)]
pub struct RoutePlan {
    wt: Vec<WtId>,
    cn: Vec<CnId>,
    seg: Vec<SegId>,
    bs: Vec<BsId>,
    sn: Vec<SnId>,
}

impl RoutePlan {
    /// Resolve routing for `events` (must be time-sorted) under `binding`
    /// and `seg_map`.
    pub fn build(
        fleet: &Fleet,
        binding: &Binding,
        seg_map: &SegmentMap,
        events: &[IoEvent],
    ) -> Result<Self, EbsError> {
        let seg_info: Vec<(u32, u64)> = fleet
            .vds
            .iter()
            .map(|d| (d.seg_base, d.spec.capacity_bytes))
            .collect();
        Self::build_inner(fleet, binding, seg_map, events, &seg_info)
    }

    /// Like [`Self::build`], reusing the per-VD segment table the shared
    /// [`EventIndex`] already computed instead of re-deriving it from the
    /// fleet.
    pub fn build_with_index(
        fleet: &Fleet,
        binding: &Binding,
        seg_map: &SegmentMap,
        events: &[IoEvent],
        idx: &EventIndex,
    ) -> Result<Self, EbsError> {
        Self::build_inner(fleet, binding, seg_map, events, idx.seg_info())
    }

    fn build_inner(
        fleet: &Fleet,
        binding: &Binding,
        seg_map: &SegmentMap,
        events: &[IoEvent],
        seg_info: &[(u32, u64)],
    ) -> Result<Self, EbsError> {
        ensure_time_sorted(events)?;
        let n = events.len();
        let mut plan = Self {
            wt: Vec::with_capacity(n),
            cn: Vec::with_capacity(n),
            seg: Vec::with_capacity(n),
            bs: Vec::with_capacity(n),
            sn: Vec::with_capacity(n),
        };
        let homes = seg_map.as_slice();
        for ev in events {
            let wt = binding
                .try_wt_of(ev.qp)
                .ok_or_else(|| EbsError::unknown_entity(format!("{} has no WT binding", ev.qp)))?;
            let vm = fleet
                .qps
                .get(ev.qp)
                .and_then(|q| fleet.vds.get(q.vd))
                .map(|d| d.vm)
                .ok_or_else(|| EbsError::unknown_entity(format!("{} not in fleet", ev.qp)))?;
            let cn = fleet
                .vms
                .get(vm)
                .map(|m| m.cn)
                .ok_or_else(|| EbsError::unknown_entity(format!("{vm} not in fleet")))?;
            let &(seg_base, capacity) = seg_info
                .get(ev.vd.index())
                .ok_or_else(|| EbsError::unknown_entity(format!("{} not in fleet", ev.vd)))?;
            if ev.offset >= capacity {
                return Err(EbsError::unknown_entity(format!(
                    "offset {} in {}",
                    ev.offset, ev.vd
                )));
            }
            let seg = SegId(seg_base + (ev.offset / SEGMENT_BYTES) as u32);
            let bs = homes.get(seg.index()).copied().ok_or_else(|| {
                EbsError::unknown_entity(format!("{seg} has no home BlockServer"))
            })?;
            let sn = fleet
                .block_servers
                .get(bs)
                .map(|b| b.sn)
                .ok_or_else(|| EbsError::unknown_entity(format!("{bs} not in fleet")))?;
            plan.wt.push(wt);
            plan.cn.push(cn);
            plan.seg.push(seg);
            plan.bs.push(bs);
            plan.sn.push(sn);
        }
        Ok(plan)
    }

    /// Number of routed events.
    pub fn len(&self) -> usize {
        self.wt.len()
    }

    /// Whether the plan covers no events.
    pub fn is_empty(&self) -> bool {
        self.wt.is_empty()
    }

    /// Per-event worker thread (hypervisor binding).
    pub fn wt(&self) -> &[WtId] {
        &self.wt
    }

    /// Per-event compute node (frontend uplink).
    pub fn cn(&self) -> &[CnId] {
        &self.cn
    }

    /// Per-event segment (BlockServer address translation).
    pub fn seg(&self) -> &[SegId] {
        &self.seg
    }

    /// Per-event BlockServer (current segment placement).
    pub fn bs(&self) -> &[BsId] {
        &self.bs
    }

    /// Per-event storage node (backend link + ChunkServer engine).
    pub fn sn(&self) -> &[SnId] {
        &self.sn
    }
}
