//! ChunkServer model: the node-level append-only storage engine.
//!
//! Each ChunkServer persists segment files to its SSDs in an append-only
//! log (§2.1), so overwrites accumulate garbage that periodic GC reclaims.
//! The simulator tracks per-CS occupancy and GC activity; GC pressure adds
//! a latency penalty, which is how write-heavy hotspots degrade their
//! neighbours in the storage cluster.

/// Accounting state of one ChunkServer.
#[derive(Clone, Debug)]
pub struct ChunkServer {
    capacity_bytes: f64,
    live_bytes: f64,
    garbage_bytes: f64,
    gc_threshold: f64,
    gc_runs: u64,
    bytes_reclaimed: f64,
}

impl ChunkServer {
    /// A ChunkServer with `capacity_bytes` of raw SSD capacity; GC triggers
    /// when garbage exceeds `gc_threshold` (fraction of capacity).
    pub fn new(capacity_bytes: f64, gc_threshold: f64) -> Self {
        assert!(capacity_bytes > 0.0);
        assert!((0.0..1.0).contains(&gc_threshold) && gc_threshold > 0.0);
        Self {
            capacity_bytes,
            live_bytes: 0.0,
            garbage_bytes: 0.0,
            gc_threshold,
            gc_runs: 0,
            bytes_reclaimed: 0.0,
        }
    }

    /// Record an appended write of `bytes`; `overwrite_frac` of it
    /// obsoletes existing data (becoming garbage). Runs GC if the garbage
    /// share crosses the threshold. Returns `true` if GC ran.
    pub fn append(&mut self, bytes: f64, overwrite_frac: f64) -> bool {
        let overwrite = bytes * overwrite_frac.clamp(0.0, 1.0);
        self.live_bytes += bytes - overwrite;
        self.garbage_bytes += overwrite;
        if self.garbage_bytes > self.gc_threshold * self.capacity_bytes {
            self.bytes_reclaimed += self.garbage_bytes;
            self.garbage_bytes = 0.0;
            self.gc_runs += 1;
            true
        } else {
            false
        }
    }

    /// Fraction of capacity that is garbage right now.
    pub fn garbage_ratio(&self) -> f64 {
        self.garbage_bytes / self.capacity_bytes
    }

    /// Fraction of capacity holding live data.
    pub fn occupancy(&self) -> f64 {
        self.live_bytes / self.capacity_bytes
    }

    /// Latency multiplier from GC pressure: 1.0 when clean, rising linearly
    /// to 2.0 at the GC threshold (writes behind a GC-pressured engine see
    /// up to double latency).
    pub fn gc_pressure(&self) -> f64 {
        1.0 + (self.garbage_ratio() / self.gc_threshold).min(1.0)
    }

    /// Number of completed GC cycles.
    pub fn gc_runs(&self) -> u64 {
        self.gc_runs
    }

    /// Total bytes reclaimed by GC so far.
    pub fn bytes_reclaimed(&self) -> f64 {
        self.bytes_reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_engine_is_clean() {
        let cs = ChunkServer::new(1e12, 0.2);
        assert_eq!(cs.garbage_ratio(), 0.0);
        assert_eq!(cs.occupancy(), 0.0);
        assert_eq!(cs.gc_pressure(), 1.0);
    }

    #[test]
    fn overwrites_accumulate_garbage() {
        let mut cs = ChunkServer::new(1000.0, 0.5);
        cs.append(100.0, 0.4);
        assert!((cs.garbage_ratio() - 0.04).abs() < 1e-12);
        assert!((cs.occupancy() - 0.06).abs() < 1e-12);
    }

    #[test]
    fn gc_triggers_at_threshold_and_reclaims() {
        let mut cs = ChunkServer::new(1000.0, 0.1);
        // 99 garbage bytes: below the 100-byte threshold.
        assert!(!cs.append(99.0, 1.0));
        assert_eq!(cs.gc_runs(), 0);
        // Two more garbage bytes: cross and reclaim.
        assert!(cs.append(2.0, 1.0));
        assert_eq!(cs.gc_runs(), 1);
        assert_eq!(cs.garbage_ratio(), 0.0);
        assert!((cs.bytes_reclaimed() - 101.0).abs() < 1e-9);
    }

    #[test]
    fn pressure_grows_with_garbage() {
        let mut cs = ChunkServer::new(1000.0, 0.2);
        let p0 = cs.gc_pressure();
        cs.append(150.0, 1.0);
        let p1 = cs.gc_pressure();
        assert!(p1 > p0);
        assert!(p1 <= 2.0);
    }

    #[test]
    fn pure_new_writes_make_no_garbage() {
        let mut cs = ChunkServer::new(1000.0, 0.2);
        for _ in 0..10 {
            assert!(!cs.append(10.0, 0.0));
        }
        assert_eq!(cs.garbage_ratio(), 0.0);
        assert!((cs.occupancy() - 0.1).abs() < 1e-12);
    }
}
