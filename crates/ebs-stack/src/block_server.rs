//! BlockServer model: address translation and the read-prefetch buffer.
//!
//! The BlockServer translates VD block semantics into file APIs (§2.1) and
//! runs the per-segment prefetcher of §2.2: when it detects continuous
//! large-block reads on a segment it loads the following data from the
//! ChunkServer into local memory, so subsequent sequential reads skip the
//! CS hop.

use ebs_core::hash::FxHashMap;
use ebs_core::ids::SegId;
use ebs_core::io::{IoEvent, Op};
use ebs_core::units::{KIB, SEGMENT_BYTES};

/// Reads at least this large count toward the "continuous large block
/// read" detector.
const LARGE_READ_BYTES: u32 = 128 * KIB as u32;

/// Consecutive sequential large reads needed to arm the prefetcher.
const SEQ_THRESHOLD: u32 = 4;

/// Bytes the prefetcher loads ahead once armed.
const PREFETCH_WINDOW: u64 = 8 * 1024 * 1024;

/// Address translation result: which segment and what offset inside it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Translation {
    /// Segment index within the VD.
    pub seg_index: u32,
    /// Byte offset inside the segment's backing file.
    pub file_offset: u64,
}

/// Translate a VD byte offset into (segment, in-file offset).
pub fn translate(offset: u64) -> Translation {
    Translation {
        seg_index: (offset / SEGMENT_BYTES) as u32,
        file_offset: offset % SEGMENT_BYTES,
    }
}

/// Per-segment sequential-read detector state.
#[derive(Clone, Copy, Debug, Default)]
struct SeqState {
    next_expected: u64,
    run: u32,
    prefetched_until: u64,
}

/// The prefetch engine of one BlockServer process.
#[derive(Clone, Debug, Default)]
pub struct Prefetcher {
    state: FxHashMap<SegId, SeqState>,
    hits: u64,
    misses: u64,
}

impl Prefetcher {
    /// Fresh prefetcher with no armed segments.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe one IO against `seg`; returns `true` when a read is served
    /// from the prefetch buffer (the IO may skip the ChunkServer).
    ///
    /// Writes invalidate the segment's detector (the buffer would be
    /// stale) — the §7.2 reason prefetching barely helps write-dominant
    /// hot blocks.
    pub fn observe(&mut self, seg: SegId, ev: &IoEvent) -> bool {
        let t = translate(ev.offset);
        let st = self.state.entry(seg).or_default();
        match ev.op {
            Op::Write => {
                *st = SeqState::default();
                false
            }
            Op::Read => {
                let hit = t.file_offset < st.prefetched_until
                    && st.prefetched_until != 0
                    && t.file_offset + ev.size as u64 <= st.prefetched_until;
                if hit {
                    self.hits += 1;
                } else {
                    self.misses += 1;
                }
                // Sequential large-read detection.
                if ev.size >= LARGE_READ_BYTES && t.file_offset == st.next_expected {
                    st.run += 1;
                } else if ev.size >= LARGE_READ_BYTES {
                    st.run = 1;
                } else {
                    st.run = 0;
                }
                st.next_expected = t.file_offset + ev.size as u64;
                if st.run >= SEQ_THRESHOLD {
                    st.prefetched_until = (st.next_expected + PREFETCH_WINDOW).min(SEGMENT_BYTES);
                }
                hit
            }
        }
    }

    /// `(prefetch hits, misses)` among observed reads.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of segments with live detector state.
    pub fn tracked_segments(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_core::ids::{QpId, VdId};
    use ebs_core::units::GIB;

    fn read(offset: u64, size: u32) -> IoEvent {
        IoEvent {
            t_us: 0,
            vd: VdId(0),
            qp: QpId(0),
            op: Op::Read,
            size,
            offset,
        }
    }

    fn write(offset: u64) -> IoEvent {
        IoEvent {
            t_us: 0,
            vd: VdId(0),
            qp: QpId(0),
            op: Op::Write,
            size: 4096,
            offset,
        }
    }

    #[test]
    fn translation_splits_offset() {
        let t = translate(33 * GIB + 512);
        assert_eq!(t.seg_index, 1);
        assert_eq!(t.file_offset, GIB + 512);
    }

    #[test]
    fn sequential_large_reads_arm_prefetch() {
        let mut p = Prefetcher::new();
        let seg = SegId(0);
        let sz = 256 * KIB as u32;
        let mut off = 0u64;
        // First SEQ_THRESHOLD reads miss while the detector warms up.
        for _ in 0..SEQ_THRESHOLD {
            assert!(!p.observe(seg, &read(off, sz)));
            off += sz as u64;
        }
        // Now the window is armed: the next sequential reads hit.
        for _ in 0..10 {
            assert!(p.observe(seg, &read(off, sz)), "offset {off} should hit");
            off += sz as u64;
        }
        let (hits, misses) = p.stats();
        assert_eq!(hits, 10);
        assert_eq!(misses, SEQ_THRESHOLD as u64);
    }

    #[test]
    fn small_or_random_reads_never_arm() {
        let mut p = Prefetcher::new();
        let seg = SegId(1);
        for i in 0..20 {
            assert!(!p.observe(seg, &read(i * 4096, 4096)));
        }
        // Random large reads don't arm either.
        for i in 0..20 {
            assert!(!p.observe(seg, &read((i * 977_777_777) % GIB, 256 * KIB as u32)));
        }
    }

    #[test]
    fn writes_invalidate_the_window() {
        let mut p = Prefetcher::new();
        let seg = SegId(2);
        let sz = 256 * KIB as u32;
        let mut off = 0u64;
        for _ in 0..SEQ_THRESHOLD {
            p.observe(seg, &read(off, sz));
            off += sz as u64;
        }
        assert!(p.observe(seg, &read(off, sz)));
        off += sz as u64;
        p.observe(seg, &write(0));
        assert!(
            !p.observe(seg, &read(off, sz)),
            "window must be cold after a write"
        );
    }

    #[test]
    fn independent_segments_do_not_interfere() {
        let mut p = Prefetcher::new();
        let sz = 256 * KIB as u32;
        let mut off = 0u64;
        for _ in 0..SEQ_THRESHOLD + 1 {
            p.observe(SegId(0), &read(off, sz));
            p.observe(SegId(1), &write(off));
            off += sz as u64;
        }
        assert_eq!(p.tracked_segments(), 2);
        assert!(p.observe(SegId(0), &read(off, sz)));
    }
}
