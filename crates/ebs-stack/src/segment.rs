//! Mutable segment → BlockServer placement (the forwarding layer's map).
//!
//! The fleet carries the *initial* placement; the inter-BS balancer (§6)
//! migrates segments between BlockServers at runtime. [`SegmentMap`] is
//! that mutable map plus a migration log, with the invariant that a segment
//! is always owned by exactly one BlockServer in its own data center.

use ebs_core::ids::{BsId, SegId};
use ebs_core::topology::Fleet;

/// One recorded migration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Migration {
    /// When the migration happened (balancer period index or tick).
    pub at: u32,
    /// The segment moved.
    pub seg: SegId,
    /// Source BlockServer.
    pub from: BsId,
    /// Destination BlockServer.
    pub to: BsId,
}

/// Mutable segment placement with a migration log.
#[derive(Clone, Debug)]
pub struct SegmentMap {
    home: Vec<BsId>,
    log: Vec<Migration>,
}

impl SegmentMap {
    /// Start from the fleet's initial placement.
    pub fn from_fleet(fleet: &Fleet) -> Self {
        Self {
            home: fleet.seg_home.as_slice().to_vec(),
            log: Vec::new(),
        }
    }

    /// Current owner of `seg`.
    pub fn home_of(&self, seg: SegId) -> BsId {
        self.home[seg.index()]
    }

    /// The full placement as a slice indexed by segment.
    pub fn as_slice(&self) -> &[BsId] {
        &self.home
    }

    /// Move `seg` to `to` at logical time `at`. No-op if already there.
    ///
    /// # Panics
    /// In debug builds, panics if the destination BlockServer is in a
    /// different data center than the segment.
    pub fn migrate(&mut self, fleet: &Fleet, at: u32, seg: SegId, to: BsId) {
        let from = self.home_of(seg);
        if from == to {
            return;
        }
        debug_assert_eq!(
            fleet.dc_of_seg(seg),
            fleet.storage_nodes[fleet.block_servers[to].sn].dc,
            "cross-DC migration is not a thing"
        );
        self.home[seg.index()] = to;
        self.log.push(Migration { at, seg, from, to });
    }

    /// All migrations so far, in order.
    pub fn log(&self) -> &[Migration] {
        &self.log
    }

    /// Segments currently homed on `bs`.
    pub fn segments_of(&self, bs: BsId) -> Vec<SegId> {
        self.home
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h == bs)
            .map(|(i, _)| SegId::from_index(i))
            .collect()
    }

    /// Number of segments per BlockServer, indexed by BS.
    pub fn load_counts(&self, bs_total: usize) -> Vec<usize> {
        let mut counts = vec![0usize; bs_total];
        for &h in &self.home {
            counts[h.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_core::apps::AppClass;
    use ebs_core::spec::VdTier;
    use ebs_core::topology::FleetBuilder;
    use ebs_core::units::GIB;

    fn fleet() -> Fleet {
        let mut b = FleetBuilder::new();
        let dc = b.add_dc("DC-1");
        let sn = b.add_sn(dc);
        let _ = b.add_bs(sn);
        let _ = b.add_bs(sn);
        let _ = b.add_bs(sn);
        let u = b.add_user();
        let cn = b.add_cn(dc, 2, false);
        let vm = b.add_vm(cn, u, AppClass::BigData);
        b.add_vd(vm, VdTier::Standard.spec(160 * GIB)); // 5 segments
        b.finish().unwrap()
    }

    #[test]
    fn starts_from_fleet_placement() {
        let f = fleet();
        let m = SegmentMap::from_fleet(&f);
        for (i, &bs) in f.seg_home.iter().enumerate() {
            assert_eq!(m.home_of(SegId::from_index(i)), bs);
        }
        assert!(m.log().is_empty());
    }

    #[test]
    fn migrate_updates_home_and_log() {
        let f = fleet();
        let mut m = SegmentMap::from_fleet(&f);
        let seg = SegId(0);
        let from = m.home_of(seg);
        let to = BsId((from.0 + 1) % 3);
        m.migrate(&f, 7, seg, to);
        assert_eq!(m.home_of(seg), to);
        assert_eq!(
            m.log(),
            &[Migration {
                at: 7,
                seg,
                from,
                to
            }]
        );
    }

    #[test]
    fn self_migration_is_a_noop() {
        let f = fleet();
        let mut m = SegmentMap::from_fleet(&f);
        let seg = SegId(1);
        m.migrate(&f, 0, seg, m.home_of(seg));
        assert!(m.log().is_empty());
    }

    #[test]
    fn conservation_total_segments_constant() {
        let f = fleet();
        let mut m = SegmentMap::from_fleet(&f);
        m.migrate(&f, 0, SegId(0), BsId(2));
        m.migrate(&f, 1, SegId(3), BsId(2));
        let counts = m.load_counts(3);
        assert_eq!(counts.iter().sum::<usize>(), f.segments.len());
        assert_eq!(m.segments_of(BsId(2)).len(), counts[2]);
    }
}
