//! # ebs-stack — a discrete-event simulator of the EBS data path
//!
//! The paper measures a production Elastic Block Storage stack; this crate
//! is the substitute substrate (DESIGN.md §2): a simulator of the full IO
//! path of Figure 1, from the VM's queue pair down to the ChunkServer's
//! SSDs, with the same structural pieces the paper's analyses depend on:
//!
//! * **[`hypervisor`]** — polling worker threads, static round-robin QP→WT
//!   binding ("single-WT hosting"), and single-server queueing per WT.
//! * **[`throttle_gate`]** — the per-VD dual token bucket (throughput +
//!   IOPS caps) of §5.
//! * **[`latency`]** — per-component latency models for the five stages
//!   DiTing reports.
//! * **[`segment`]** — the mutable segment → BlockServer placement that the
//!   inter-BS balancer (§6) migrates.
//! * **[`block_server`]** — address translation and the sequential-read
//!   prefetcher of §2.2.
//! * **[`chunk_server`]** — the append-only node engine with GC accounting.
//! * **[`diting`]** — the tracer that assembles the paper's per-IO trace
//!   records (and exports CSV).
//! * **[`route`]** — the precomputed per-event routing table
//!   ([`route::RoutePlan`]) shared across simulation runs and sweeps.
//! * **[`sim`]** — [`sim::StackSim`], which routes a sampled IO stream
//!   through all of the above as a staged columnar pipeline, and
//!   [`sim::StackSweep`] for config sweeps that share routing and RNG
//!   columns.
//! * **[`reference`]** — the preserved event-at-a-time simulator, the
//!   differential oracle the staged pipeline is pinned against.
//!
//! ```
//! use ebs_stack::sim::{StackConfig, StackSim};
//! use ebs_workload::{generate, WorkloadConfig};
//!
//! let ds = generate(&WorkloadConfig::quick(1)).unwrap();
//! let mut sim = StackSim::new(&ds.fleet, StackConfig::default());
//! let out = sim.run(&ds.events).unwrap();
//! assert_eq!(out.traces.len(), ds.events.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block_server;
pub mod chunk_server;
pub mod diting;
pub mod hypervisor;
pub mod latency;
pub mod network;
pub mod reference;
pub mod replication;
pub mod route;
pub mod segment;
pub mod sim;
pub mod throttle_gate;

pub use hypervisor::Binding;
pub use latency::LatencyModel;
pub use network::{FabricModel, Link};
pub use reference::ReferenceSim;
pub use replication::ReplicationPolicy;
pub use route::RoutePlan;
pub use segment::{Migration, SegmentMap};
pub use sim::{SimOutput, SimSession, SimStats, StackConfig, StackSim, StackSweep};
pub use throttle_gate::{TokenBucket, VdGate};
