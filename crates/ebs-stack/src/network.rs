//! Congestion-aware fabric model for the frontend and backend networks.
//!
//! The latency stages in [`crate::latency`] capture per-IO transfer cost;
//! this module adds the *shared-link* effect: a compute node's uplink (or a
//! storage node's backend link) under high utilization inflates every IO
//! crossing it. Utilization is tracked as an exponentially-decayed byte
//! rate per link, and the congestion multiplier follows the classic M/M/1
//! `1/(1−ρ)` shape, capped so a transient overshoot cannot produce
//! unbounded latencies.

/// One shared link with EWMA utilization tracking.
#[derive(Clone, Debug)]
pub struct Link {
    capacity_bps: f64,
    /// Decay time constant in microseconds.
    tau_us: f64,
    rate_bps: f64,
    last_us: f64,
}

impl Link {
    /// A link of `capacity_bps` with utilization averaged over `tau_us`.
    pub fn new(capacity_bps: f64, tau_us: f64) -> Self {
        assert!(capacity_bps > 0.0 && tau_us > 0.0);
        Self {
            capacity_bps,
            tau_us,
            rate_bps: 0.0,
            last_us: 0.0,
        }
    }

    /// Record `bytes` crossing the link at `now_us` and return the
    /// congestion multiplier the transfer experiences (≥ 1). Time may not
    /// go backwards.
    pub fn transfer(&mut self, now_us: f64, bytes: f64) -> f64 {
        let now_us = now_us.max(self.last_us);
        let dt = now_us - self.last_us;
        // Exponential decay of the rate estimate.
        let decay = (-dt / self.tau_us).exp();
        self.rate_bps *= decay;
        self.last_us = now_us;
        // The transfer adds its bytes, spread over the time constant.
        self.rate_bps += bytes / (self.tau_us / 1e6);
        let rho = (self.rate_bps / self.capacity_bps).min(0.95);
        1.0 / (1.0 - rho)
    }

    /// Current utilization estimate in `[0, ∞)` (may transiently exceed 1
    /// before the cap in [`Link::transfer`] applies).
    pub fn utilization(&mut self, now_us: f64) -> f64 {
        let now_us = now_us.max(self.last_us);
        let dt = now_us - self.last_us;
        self.rate_bps *= (-dt / self.tau_us).exp();
        self.last_us = now_us;
        self.rate_bps / self.capacity_bps
    }
}

/// The two fabrics of Figure 1: per-CN frontend uplinks and per-SN backend
/// links.
#[derive(Clone, Debug)]
pub struct FabricModel {
    frontend: Vec<Link>,
    backend: Vec<Link>,
}

impl FabricModel {
    /// A fabric with `cn_count` frontend uplinks and `sn_count` backend
    /// links. Defaults: 25 Gb/s frontend, 100 Gb/s backend (RDMA), 10 ms
    /// utilization window.
    pub fn new(cn_count: usize, sn_count: usize) -> Self {
        Self {
            frontend: (0..cn_count)
                .map(|_| Link::new(25e9 / 8.0, 10_000.0))
                .collect(),
            backend: (0..sn_count)
                .map(|_| Link::new(100e9 / 8.0, 10_000.0))
                .collect(),
        }
    }

    /// Congestion multiplier for a frontend transfer from compute node
    /// `cn_idx`.
    pub fn frontend_transfer(&mut self, cn_idx: usize, now_us: f64, bytes: f64) -> f64 {
        self.frontend[cn_idx].transfer(now_us, bytes)
    }

    /// Congestion multiplier for a backend transfer to storage node
    /// `sn_idx`.
    pub fn backend_transfer(&mut self, sn_idx: usize, now_us: f64, bytes: f64) -> f64 {
        self.backend[sn_idx].transfer(now_us, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_has_unit_multiplier() {
        let mut l = Link::new(1e9, 10_000.0);
        let m = l.transfer(0.0, 1500.0);
        assert!((1.0..1.1).contains(&m), "near-idle multiplier {m}");
    }

    #[test]
    fn sustained_load_inflates_latency() {
        let mut l = Link::new(1e6, 10_000.0); // 1 MB/s capacity
        let mut m_last = 1.0;
        // Offer ~5 MB/s for 50 ms.
        for i in 0..500u32 {
            m_last = l.transfer(i as f64 * 100.0, 500.0);
        }
        assert!(m_last > 5.0, "hot link multiplier {m_last}");
    }

    #[test]
    fn multiplier_is_capped() {
        let mut l = Link::new(1.0, 10_000.0); // absurdly small capacity
        let m = l.transfer(0.0, 1e12);
        assert!(m <= 20.0 + 1e-9, "cap broken: {m}"); // 1/(1-0.95) = 20
    }

    #[test]
    fn utilization_decays_when_idle() {
        let mut l = Link::new(1e6, 10_000.0);
        l.transfer(0.0, 10_000.0);
        let busy = l.utilization(0.0);
        let later = l.utilization(100_000.0); // 10 time constants later
        assert!(later < busy * 0.01, "decay broken: {busy} → {later}");
    }

    #[test]
    fn links_are_independent() {
        let mut fabric = FabricModel::new(2, 1);
        for i in 0..200u32 {
            fabric.frontend_transfer(0, i as f64 * 50.0, (1u64 << 20) as f64);
        }
        let hot = fabric.frontend_transfer(0, 10_000.0, 4096.0);
        let cold = fabric.frontend_transfer(1, 10_000.0, 4096.0);
        assert!(hot > cold, "hot {hot} vs cold {cold}");
    }

    #[test]
    fn time_never_goes_backwards_internally() {
        let mut l = Link::new(1e9, 1_000.0);
        l.transfer(1_000.0, 100.0);
        // An out-of-order timestamp is clamped, not panicked on.
        let m = l.transfer(500.0, 100.0);
        assert!(m >= 1.0);
    }
}
