//! The hypervisor model: polling worker threads with QP bindings.
//!
//! Each compute node runs `wt_count` worker threads pinned to cores; each
//! VD queue pair is statically bound to exactly one WT ("single-WT
//! hosting", §2.2). A WT is a single server: IOs bound to it queue when it
//! is busy. The simulator uses that queueing delay as the compute-node
//! share of end-to-end latency, which is what makes WT-level skew visible
//! in tail latency.

use ebs_core::ids::{IdVec, QpId, WtId};
use ebs_core::topology::Fleet;

/// Mutable QP→WT binding table, initialised from the fleet's round-robin
/// attach-time binding. Rebinding algorithms (`ebs-balance::wt_rebind`)
/// operate on clones of this table.
#[derive(Clone, Debug)]
pub struct Binding {
    map: IdVec<QpId, WtId>,
}

impl Binding {
    /// The fleet's attach-time round-robin binding.
    pub fn from_fleet(fleet: &Fleet) -> Self {
        Self {
            map: fleet.qp_binding.clone(),
        }
    }

    /// The worker thread currently serving `qp`.
    pub fn wt_of(&self, qp: QpId) -> WtId {
        self.map[qp]
    }

    /// Panic-free lookup of the worker thread serving `qp` (used by the
    /// route planner, which must not panic on malformed input).
    pub fn try_wt_of(&self, qp: QpId) -> Option<WtId> {
        self.map.get(qp).copied()
    }

    /// Rebind `qp` to `wt`.
    ///
    /// # Panics
    /// In debug builds, panics if the target WT belongs to a different
    /// compute node than the QP (bindings never cross nodes).
    pub fn rebind(&mut self, fleet: &Fleet, qp: QpId, wt: WtId) {
        debug_assert_eq!(
            fleet.cn_of_qp(qp),
            fleet.cn_of_wt(wt),
            "rebinding across compute nodes is impossible"
        );
        self.map[qp] = wt;
    }

    /// Swap the QP sets of two worker threads on the same node (the rebind
    /// simulator's move, §4.3).
    pub fn swap_wts(&mut self, a: WtId, b: WtId) {
        for wt in self.map.iter_mut() {
            if *wt == a {
                *wt = b;
            } else if *wt == b {
                *wt = a;
            }
        }
    }

    /// Number of QPs bound to `wt`.
    pub fn qp_count_of(&self, wt: WtId) -> usize {
        self.map.iter().filter(|&&w| w == wt).count()
    }
}

/// Single-server queueing state of all worker threads: for each WT, the
/// time at which it becomes free. Events must be offered in non-decreasing
/// arrival order.
#[derive(Clone, Debug)]
pub struct WtQueues {
    free_at_us: Vec<f64>,
}

impl WtQueues {
    /// Queues for `wt_total` worker threads, all initially idle.
    pub fn new(wt_total: u32) -> Self {
        Self {
            free_at_us: vec![0.0; wt_total as usize],
        }
    }

    /// Serve one IO arriving at `arrival_us` on `wt` with service time
    /// `service_us`. Returns the queueing delay (time spent waiting for the
    /// WT, excluding service).
    pub fn serve(&mut self, wt: WtId, arrival_us: f64, service_us: f64) -> f64 {
        let free = &mut self.free_at_us[wt.index()];
        let start = free.max(arrival_us);
        let wait = start - arrival_us;
        *free = start + service_us;
        wait
    }

    /// Time at which `wt` becomes idle.
    pub fn free_at(&self, wt: WtId) -> f64 {
        self.free_at_us[wt.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_core::apps::AppClass;
    use ebs_core::spec::VdTier;
    use ebs_core::topology::FleetBuilder;
    use ebs_core::units::GIB;

    fn fleet() -> Fleet {
        let mut b = FleetBuilder::new();
        let dc = b.add_dc("DC-1");
        let sn = b.add_sn(dc);
        b.add_bs(sn);
        let u = b.add_user();
        let cn = b.add_cn(dc, 2, false);
        let vm = b.add_vm(cn, u, AppClass::Database);
        b.add_vd(vm, VdTier::Performance.spec(64 * GIB)); // 4 QPs → wt 0,1,0,1
        b.finish().unwrap()
    }

    #[test]
    fn binding_starts_round_robin() {
        let f = fleet();
        let b = Binding::from_fleet(&f);
        assert_eq!(b.wt_of(QpId(0)), WtId(0));
        assert_eq!(b.wt_of(QpId(1)), WtId(1));
        assert_eq!(b.wt_of(QpId(2)), WtId(0));
        assert_eq!(b.qp_count_of(WtId(0)), 2);
    }

    #[test]
    fn rebind_moves_one_qp() {
        let f = fleet();
        let mut b = Binding::from_fleet(&f);
        b.rebind(&f, QpId(0), WtId(1));
        assert_eq!(b.wt_of(QpId(0)), WtId(1));
        assert_eq!(b.qp_count_of(WtId(1)), 3);
    }

    #[test]
    fn swap_exchanges_qp_sets() {
        let f = fleet();
        let mut b = Binding::from_fleet(&f);
        b.swap_wts(WtId(0), WtId(1));
        assert_eq!(b.wt_of(QpId(0)), WtId(1));
        assert_eq!(b.wt_of(QpId(1)), WtId(0));
        assert_eq!(b.qp_count_of(WtId(0)), 2);
        assert_eq!(b.qp_count_of(WtId(1)), 2);
    }

    #[test]
    fn queueing_accumulates_under_load() {
        let mut q = WtQueues::new(1);
        // Three back-to-back IOs, each 10 µs of service, arriving together.
        assert_eq!(q.serve(WtId(0), 100.0, 10.0), 0.0);
        assert_eq!(q.serve(WtId(0), 100.0, 10.0), 10.0);
        assert_eq!(q.serve(WtId(0), 100.0, 10.0), 20.0);
        assert_eq!(q.free_at(WtId(0)), 130.0);
    }

    #[test]
    fn idle_wt_serves_immediately() {
        let mut q = WtQueues::new(2);
        q.serve(WtId(0), 0.0, 50.0);
        // Different WT: no interference.
        assert_eq!(q.serve(WtId(1), 10.0, 5.0), 0.0);
        // Same WT after it drained: no wait.
        assert_eq!(q.serve(WtId(0), 100.0, 5.0), 0.0);
    }
}
