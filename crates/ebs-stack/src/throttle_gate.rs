//! Per-VD token-bucket throttle (§5).
//!
//! The hypervisor caps each VD's throughput *and* IOPS; whichever bucket
//! empties first delays the IO. The gate is a classic dual token bucket:
//! tokens refill continuously at the cap rate up to one second of burst
//! allowance, and an IO that finds the bucket short waits until enough
//! tokens accrue.

use ebs_core::spec::VdSpec;

/// One token bucket refilling at `rate` per second with `burst` capacity.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_us: f64,
}

impl TokenBucket {
    /// A bucket refilling at `rate` units/second holding at most `burst`
    /// units (commonly one second of rate).
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0 && burst > 0.0);
        Self {
            rate,
            burst,
            tokens: burst,
            last_us: 0.0,
        }
    }

    /// Admit a demand of `amount` units arriving at `now_us`. Returns the
    /// delay in microseconds before the IO may proceed (0 when tokens are
    /// available). Arrivals earlier than the bucket's clock (IOs queued
    /// behind a previously delayed one) are FIFO-queued: they are treated
    /// as arriving when the bucket frees up, and their reported delay
    /// includes that queueing time.
    pub fn admit(&mut self, now_us: f64, amount: f64) -> f64 {
        let queued_us = (self.last_us - now_us).max(0.0);
        let now_us = now_us.max(self.last_us);
        let dt = (now_us - self.last_us) / 1e6;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        self.last_us = now_us;
        if self.tokens >= amount {
            self.tokens -= amount;
            queued_us
        } else {
            let deficit = amount - self.tokens;
            self.tokens = 0.0;
            // The IO waits for the deficit to refill.
            let wait_us = deficit / self.rate * 1e6;
            self.last_us = now_us + wait_us;
            queued_us + wait_us
        }
    }

    /// Change the refill rate and burst allowance in place, keeping the
    /// bucket's clock and clamping banked tokens to the new burst. This is
    /// how online cap changes (lending grants/reclaims) take effect
    /// without refunding a full burst: a gate that was drained stays
    /// drained. Non-positive targets are ignored — a bucket never stalls.
    pub fn retarget(&mut self, rate: f64, burst: f64) {
        if rate > 0.0 && burst > 0.0 {
            self.rate = rate;
            self.burst = burst;
            self.tokens = self.tokens.min(burst);
        }
    }

    /// Tokens currently available (after refilling to `now_us`).
    pub fn available(&mut self, now_us: f64) -> f64 {
        let dt = ((now_us - self.last_us) / 1e6).max(0.0);
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        self.last_us = self.last_us.max(now_us);
        self.tokens
    }

    /// The refill rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

/// The dual throughput + IOPS gate of one VD.
#[derive(Clone, Debug)]
pub struct VdGate {
    bytes: TokenBucket,
    ops: TokenBucket,
    throttled_ios: u64,
    total_ios: u64,
}

impl VdGate {
    /// A gate enforcing the caps of `spec` with one second of burst.
    pub fn for_spec(spec: &VdSpec) -> Self {
        Self {
            bytes: TokenBucket::new(spec.tput_cap, spec.tput_cap),
            ops: TokenBucket::new(spec.iops_cap, spec.iops_cap),
            throttled_ios: 0,
            total_ios: 0,
        }
    }

    /// Admit one IO of `size` bytes at `now_us`; returns the throttle delay
    /// in microseconds (the max of the two buckets' delays — both must
    /// clear).
    pub fn admit(&mut self, now_us: f64, size: u32) -> f64 {
        self.total_ios += 1;
        let d1 = self.bytes.admit(now_us, size as f64);
        let d2 = self.ops.admit(now_us, 1.0);
        let delay = d1.max(d2);
        if delay > 0.0 {
            self.throttled_ios += 1;
        }
        delay
    }

    /// `(throttled, total)` IO counts seen so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.throttled_ios, self.total_ios)
    }

    /// Re-aim both buckets at the caps of `spec` (with one second of
    /// burst), preserving clock, banked tokens (clamped), and counters.
    /// See [`TokenBucket::retarget`].
    pub fn retarget(&mut self, spec: &VdSpec) {
        self.bytes.retarget(spec.tput_cap, spec.tput_cap);
        self.ops.retarget(spec.iops_cap, spec.iops_cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_core::spec::VdTier;
    use ebs_core::units::GIB;

    #[test]
    fn under_rate_traffic_is_never_delayed() {
        let mut b = TokenBucket::new(1000.0, 1000.0);
        let mut t = 0.0;
        for _ in 0..100 {
            assert_eq!(b.admit(t, 5.0), 0.0);
            t += 10_000.0; // 10 ms apart → 500/s demand vs 1000/s rate
        }
    }

    #[test]
    fn burst_beyond_bucket_delays() {
        let mut b = TokenBucket::new(1000.0, 1000.0);
        // Drain the whole burst instantly…
        assert_eq!(b.admit(0.0, 1000.0), 0.0);
        // …then the next unit must wait 1/1000 s = 1000 µs.
        let d = b.admit(0.0, 1.0);
        assert!((d - 1000.0).abs() < 1e-6, "delay {d}");
    }

    #[test]
    fn tokens_refill_up_to_burst() {
        let mut b = TokenBucket::new(100.0, 50.0);
        b.admit(0.0, 50.0);
        // After 10 s, refilled but capped at burst.
        assert!((b.available(10_000_000.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn long_run_throughput_matches_rate() {
        let mut b = TokenBucket::new(1_000_000.0, 1_000_000.0);
        let mut t = 0.0;
        let mut admitted = 0.0;
        // Offer far more than the rate for 10 simulated seconds.
        while t < 10_000_000.0 {
            let d = b.admit(t, 10_000.0);
            admitted += 10_000.0;
            t += d.max(1.0);
        }
        let rate = admitted / (t / 1e6);
        assert!(
            (rate - 1_000_000.0).abs() / 1_000_000.0 < 0.15,
            "rate {rate}"
        );
    }

    #[test]
    fn gate_throttles_on_either_dimension() {
        let spec = VdTier::Standard.spec(100 * GIB);
        let mut gate = VdGate::for_spec(&spec);
        // Tiny IOs in a tight loop: IOPS bucket trips first.
        let mut delayed = false;
        let mut t = 0.0;
        for _ in 0..(spec.iops_cap as usize * 2) {
            let d = gate.admit(t, 512);
            delayed |= d > 0.0;
            t += d;
        }
        assert!(delayed, "IOPS cap never engaged");
        let (thr, total) = gate.stats();
        assert!(thr > 0 && total > thr);
    }
}
