//! Per-component latency models.
//!
//! The DiTing trace records latency across five components (§2.3): compute
//! node, frontend network, BlockServer, backend network, ChunkServer. Each
//! component here has a base cost, a size-dependent transfer term, lognormal
//! jitter, and a small probability of a long-tail excursion — enough
//! structure for the §7 cache-location study, where the *relative*
//! magnitudes of the stages decide how much latency a CN- or BS-cache can
//! save.

use ebs_core::io::Op;
use ebs_core::rng::SimRng;

/// Parameters of one latency stage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StageParams {
    /// Fixed cost in microseconds.
    pub base_us: f64,
    /// Effective bandwidth for the size-dependent term, bytes/µs.
    pub bytes_per_us: f64,
    /// Lognormal σ of the multiplicative jitter.
    pub jitter_sigma: f64,
    /// Probability of a long-tail excursion.
    pub tail_prob: f64,
    /// Multiplier applied during an excursion.
    pub tail_mult: f64,
}

impl StageParams {
    /// Draw one latency for an IO of `size` bytes.
    pub fn sample(&self, rng: &mut SimRng, size: u32) -> f64 {
        let (g, u_tail) = Self::draw_units(rng);
        self.eval(g, u_tail, size)
    }

    /// Consume the raw randomness of one sample — the standard-normal
    /// deviate and the tail uniform — without touching any stage
    /// parameters. Exactly the draws (and draw order) of [`Self::sample`],
    /// so the staged simulator's pass B1 can pre-draw whole columns that
    /// any parameter point then evaluates via [`Self::eval`].
    #[inline]
    pub fn draw_units(rng: &mut SimRng) -> (f64, f64) {
        let g = gauss(rng);
        let u_tail = rng.next_f64();
        (g, u_tail)
    }

    /// Evaluate a sample from pre-drawn randomness: bit-identical
    /// arithmetic to [`Self::sample`] given the units from
    /// [`Self::draw_units`].
    #[inline]
    pub fn eval(&self, g: f64, u_tail: f64, size: u32) -> f64 {
        let mean = self.base_us + size as f64 / self.bytes_per_us;
        // Lognormal jitter with unit median.
        let jitter = (self.jitter_sigma * g).exp();
        let tail = if u_tail < self.tail_prob {
            self.tail_mult
        } else {
            1.0
        };
        mean * jitter * tail
    }
}

fn gauss(rng: &mut SimRng) -> f64 {
    let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The full latency model: one stage per component, per direction where it
/// matters (ChunkServer writes pay replication + persistence).
#[derive(Clone, Debug)]
pub struct LatencyModel {
    /// Hypervisor worker-thread service cost (excluding queueing, which the
    /// simulator adds from its per-WT queues).
    pub compute: StageParams,
    /// Frontend network (compute ↔ storage RPC).
    pub frontend: StageParams,
    /// BlockServer translation/forwarding.
    pub block_server: StageParams,
    /// Backend network (BS ↔ CS, RDMA).
    pub backend: StageParams,
    /// ChunkServer read path (SSD read).
    pub cs_read: StageParams,
    /// ChunkServer write path (append + replication + persistence).
    pub cs_write: StageParams,
    /// Latency multiplier for ChunkServer reads served from the
    /// BlockServer's prefetch buffer (§2.2: prefetch skips the CS hop).
    pub prefetch_discount: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            compute: StageParams {
                base_us: 6.0,
                bytes_per_us: 4000.0,
                jitter_sigma: 0.25,
                tail_prob: 0.002,
                tail_mult: 8.0,
            },
            frontend: StageParams {
                base_us: 35.0,
                bytes_per_us: 3000.0,
                jitter_sigma: 0.3,
                tail_prob: 0.005,
                tail_mult: 6.0,
            },
            block_server: StageParams {
                base_us: 12.0,
                bytes_per_us: 8000.0,
                jitter_sigma: 0.25,
                tail_prob: 0.003,
                tail_mult: 5.0,
            },
            backend: StageParams {
                base_us: 20.0,
                bytes_per_us: 5000.0,
                jitter_sigma: 0.25,
                tail_prob: 0.004,
                tail_mult: 5.0,
            },
            cs_read: StageParams {
                base_us: 90.0,
                bytes_per_us: 2500.0,
                jitter_sigma: 0.35,
                tail_prob: 0.01,
                tail_mult: 10.0,
            },
            cs_write: StageParams {
                base_us: 160.0,
                bytes_per_us: 1800.0,
                jitter_sigma: 0.35,
                tail_prob: 0.01,
                tail_mult: 10.0,
            },
            prefetch_discount: 0.15,
        }
    }
}

impl LatencyModel {
    /// ChunkServer latency for one IO; `prefetched` marks reads served from
    /// the BlockServer prefetch buffer.
    pub fn chunk_server_us(&self, rng: &mut SimRng, op: Op, size: u32, prefetched: bool) -> f64 {
        match op {
            Op::Read => {
                let full = self.cs_read.sample(rng, size);
                if prefetched {
                    full * self.prefetch_discount
                } else {
                    full
                }
            }
            Op::Write => self.cs_write.sample(rng, size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_positive_and_size_sensitive() {
        let m = LatencyModel::default();
        let mut rng = SimRng::seed_from_u64(1);
        let mut small = 0.0;
        let mut large = 0.0;
        for _ in 0..2000 {
            small += m.frontend.sample(&mut rng, 4096);
            large += m.frontend.sample(&mut rng, 1 << 20);
        }
        assert!(small > 0.0);
        assert!(
            large > small * 2.0,
            "1 MiB should cost much more than 4 KiB"
        );
    }

    #[test]
    fn writes_cost_more_than_reads_at_chunk_server() {
        let m = LatencyModel::default();
        let mut rng = SimRng::seed_from_u64(2);
        let r: f64 = (0..2000)
            .map(|_| m.chunk_server_us(&mut rng, Op::Read, 4096, false))
            .sum();
        let w: f64 = (0..2000)
            .map(|_| m.chunk_server_us(&mut rng, Op::Write, 4096, false))
            .sum();
        assert!(w > r, "write {w} read {r}");
    }

    #[test]
    fn prefetch_cuts_read_latency() {
        let m = LatencyModel::default();
        let mut rng = SimRng::seed_from_u64(3);
        let cold: f64 = (0..2000)
            .map(|_| m.chunk_server_us(&mut rng, Op::Read, 65536, false))
            .sum();
        let hot: f64 = (0..2000)
            .map(|_| m.chunk_server_us(&mut rng, Op::Read, 65536, true))
            .sum();
        assert!(hot < cold * 0.3, "prefetch {hot} vs cold {cold}");
    }

    #[test]
    fn tails_appear_at_the_configured_rate() {
        let p = StageParams {
            base_us: 10.0,
            bytes_per_us: 1e12,
            jitter_sigma: 0.0,
            tail_prob: 0.1,
            tail_mult: 100.0,
        };
        let mut rng = SimRng::seed_from_u64(4);
        let n = 50_000;
        let tails = (0..n).filter(|_| p.sample(&mut rng, 0) > 500.0).count();
        let frac = tails as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "tail fraction {frac}");
    }

    #[test]
    fn stage_ordering_matches_stack_expectations() {
        // The CS dominates, CN is cheapest — the pre-condition for the §7
        // result that a CN cache saves more than a BS cache.
        let m = LatencyModel::default();
        assert!(m.compute.base_us < m.block_server.base_us);
        assert!(m.block_server.base_us < m.cs_read.base_us);
        assert!(m.cs_read.base_us < m.cs_write.base_us);
    }
}
