//! Replicated write path.
//!
//! EBS write durability requires persisting with redundancy before acking
//! (§7.3.2): the BlockServer fans a write out to `r` ChunkServer replicas
//! and completes when the slowest of the required acks arrives. This
//! module models that quorum: per-replica latency draws from the CS write
//! stage, completion at the `k`-th order statistic. Replication is why
//! production write tails are long — one slow replica drags the IO.

use crate::latency::StageParams;
use ebs_core::rng::SimRng;

/// Replication policy of the write path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicationPolicy {
    /// Number of replicas written.
    pub replicas: u8,
    /// Acks required before the write completes (quorum), `<= replicas`.
    pub quorum: u8,
}

impl ReplicationPolicy {
    /// Three-way replication, all acks required — the classic EBS setting.
    pub const THREE_WAY: ReplicationPolicy = ReplicationPolicy {
        replicas: 3,
        quorum: 3,
    };

    /// Majority quorum over three replicas.
    pub const THREE_WAY_MAJORITY: ReplicationPolicy = ReplicationPolicy {
        replicas: 3,
        quorum: 2,
    };

    /// Single copy (no redundancy) — what the unreplicated latency model
    /// alone would give.
    pub const NONE: ReplicationPolicy = ReplicationPolicy {
        replicas: 1,
        quorum: 1,
    };

    /// Validate `1 <= quorum <= replicas`.
    pub fn validate(&self) -> Result<(), ebs_core::error::EbsError> {
        if self.replicas == 0 || self.quorum == 0 || self.quorum > self.replicas {
            return Err(ebs_core::error::EbsError::invalid_config(format!(
                "replication {}/{} invalid",
                self.quorum, self.replicas
            )));
        }
        Ok(())
    }

    /// Latency of one replicated write: draw a per-replica latency from
    /// `stage` and return the `quorum`-th smallest (the completing ack).
    pub fn write_latency_us(&self, rng: &mut SimRng, stage: &StageParams, size: u32) -> f64 {
        debug_assert!(self.validate().is_ok());
        let mut draws: Vec<f64> = (0..self.replicas)
            .map(|_| stage.sample(rng, size))
            .collect();
        draws.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        draws[self.quorum as usize - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage() -> StageParams {
        StageParams {
            base_us: 100.0,
            bytes_per_us: 2000.0,
            jitter_sigma: 0.4,
            tail_prob: 0.02,
            tail_mult: 10.0,
        }
    }

    #[test]
    fn validation_catches_bad_policies() {
        assert!(ReplicationPolicy {
            replicas: 0,
            quorum: 0
        }
        .validate()
        .is_err());
        assert!(ReplicationPolicy {
            replicas: 2,
            quorum: 3
        }
        .validate()
        .is_err());
        assert!(ReplicationPolicy::THREE_WAY.validate().is_ok());
        assert!(ReplicationPolicy::NONE.validate().is_ok());
    }

    #[test]
    fn full_quorum_is_slower_than_single_copy() {
        let s = stage();
        let mut rng = SimRng::seed_from_u64(1);
        let n = 5000;
        let three: f64 = (0..n)
            .map(|_| ReplicationPolicy::THREE_WAY.write_latency_us(&mut rng, &s, 4096))
            .sum();
        let one: f64 = (0..n)
            .map(|_| ReplicationPolicy::NONE.write_latency_us(&mut rng, &s, 4096))
            .sum();
        assert!(three > one * 1.15, "3-way {three:.0} vs 1-way {one:.0}");
    }

    #[test]
    fn majority_quorum_beats_full_quorum_and_hedges_the_tail() {
        let s = stage();
        let mut rng = SimRng::seed_from_u64(2);
        let n = 20_000;
        let draws = |p: ReplicationPolicy, rng: &mut SimRng| -> Vec<f64> {
            let mut v: Vec<f64> = (0..n).map(|_| p.write_latency_us(rng, &s, 4096)).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v
        };
        let one = draws(ReplicationPolicy::NONE, &mut rng);
        let maj = draws(ReplicationPolicy::THREE_WAY_MAJORITY, &mut rng);
        let all = draws(ReplicationPolicy::THREE_WAY, &mut rng);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let p99 = |v: &[f64]| v[(v.len() as f64 * 0.99) as usize];
        // Waiting for all three acks is strictly slower than a majority.
        assert!(
            mean(&maj) < mean(&all),
            "{:.0} vs {:.0}",
            mean(&maj),
            mean(&all)
        );
        // The classic "tail at scale" effect: a 2-of-3 quorum needs two
        // slow replicas to be slow, so its p99 undercuts even a single
        // copy's p99.
        assert!(
            p99(&maj) < p99(&one),
            "{:.0} vs {:.0}",
            p99(&maj),
            p99(&one)
        );
    }

    #[test]
    fn replication_amplifies_the_tail() {
        // The paper's motivation for long write tails: p99 grows faster
        // than the mean under full-quorum replication.
        let s = stage();
        let mut rng = SimRng::seed_from_u64(3);
        let n = 20_000;
        let mut one: Vec<f64> = (0..n)
            .map(|_| ReplicationPolicy::NONE.write_latency_us(&mut rng, &s, 4096))
            .collect();
        let mut three: Vec<f64> = (0..n)
            .map(|_| ReplicationPolicy::THREE_WAY.write_latency_us(&mut rng, &s, 4096))
            .collect();
        one.sort_by(|a, b| a.partial_cmp(b).unwrap());
        three.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99 = |v: &[f64]| v[(v.len() as f64 * 0.99) as usize];
        assert!(
            p99(&three) > p99(&one),
            "replication must lengthen the tail"
        );
    }
}
