//! The end-to-end stack simulator, as a staged columnar pipeline.
//!
//! [`StackSim::run`] routes a time-ordered stream of sampled IO events
//! through the full path of Figure 1: QP → worker thread (with single-
//! server queueing), optional per-VD throttle, frontend network,
//! BlockServer (address translation + prefetch), backend network, and
//! ChunkServer (append-only engine with GC pressure) — and hands each IO to
//! DiTing to produce the paper's trace dataset with the five-stage latency
//! breakdown.
//!
//! Internally the run is three passes over routing columns from a
//! [`RoutePlan`] (DESIGN.md §16), byte-identical to the preserved
//! event-at-a-time loop in [`crate::reference`]:
//!
//! * **Pass A** (no RNG) replays the throttle gates, prefetchers, GC
//!   engines, and fabric links in event order, producing per-event
//!   throttle-delay, congestion, prefetch-hit, and GC-pressure columns.
//! * **Pass B1** drains the single `stack/latency` RNG stream in exactly
//!   the per-event order the reference uses (which samples occur is known
//!   from pass A's prefetch column) into *parameter-independent* columns:
//!   the standard-normal deviate and tail uniform of every sample.
//! * **Pass B2** evaluates each latency stage as a tight column kernel
//!   over those units; because the units don't depend on the latency
//!   model, a [`StackSweep`] caches evaluated columns per stage-parameter
//!   value and re-evaluates only the stages a config point changes.
//! * **Pass C** runs the WT queues, congestion/replication arithmetic,
//!   and DiTing record assembly over the columns.

use crate::block_server::Prefetcher;
use crate::chunk_server::ChunkServer;
use crate::diting::Diting;
use crate::hypervisor::{Binding, WtQueues};
use crate::latency::{LatencyModel, StageParams};
use crate::network::FabricModel;
use crate::replication::ReplicationPolicy;
use crate::route::RoutePlan;
use crate::segment::SegmentMap;
use crate::throttle_gate::VdGate;
use ebs_core::error::EbsError;
use ebs_core::hash::FxHashMap;
use ebs_core::index::EventIndex;
use ebs_core::io::{IoEvent, Op};
use ebs_core::rng::RngFactory;
use ebs_core::topology::Fleet;
use ebs_core::trace::{StageLatency, TraceRecord, TraceSet};
use ebs_core::units::TRACE_SAMPLE_RATE;
use std::rc::Rc;

/// Stack-simulation configuration.
#[derive(Clone, Debug)]
pub struct StackConfig {
    /// Seed for latency jitter and tail draws.
    pub seed: u64,
    /// Apply the per-VD dual token-bucket throttle.
    pub apply_throttle: bool,
    /// Because the simulator sees the 1/3200-sampled stream, throttle caps
    /// are scaled by this factor so the gates fire at the same relative
    /// load as they would on the full population. Set to 1.0 when feeding
    /// unsampled streams.
    pub throttle_scale: f64,
    /// Latency model.
    pub latency: LatencyModel,
    /// Raw SSD capacity per ChunkServer in bytes (GC accounting).
    pub cs_capacity_bytes: f64,
    /// Garbage fraction that triggers GC.
    pub gc_threshold: f64,
    /// Fraction of write bytes that overwrite live data (creates garbage).
    pub overwrite_frac: f64,
    /// Write-path replication (EBS persists with redundancy before acking).
    pub replication: ReplicationPolicy,
    /// Model shared-link congestion on the frontend/backend fabrics.
    pub model_congestion: bool,
}

impl Default for StackConfig {
    fn default() -> Self {
        Self {
            seed: 0x57AC_C0DE,
            apply_throttle: true,
            throttle_scale: TRACE_SAMPLE_RATE,
            latency: LatencyModel::default(),
            cs_capacity_bytes: 4.0e12,
            gc_threshold: 0.25,
            overwrite_frac: 0.5,
            replication: ReplicationPolicy::THREE_WAY,
            model_congestion: true,
        }
    }
}

/// Aggregate statistics of one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// IOs routed.
    pub ios: u64,
    /// IOs delayed by the throttle.
    pub throttled: u64,
    /// Reads served from BlockServer prefetch buffers.
    pub prefetch_hits: u64,
    /// GC cycles across all ChunkServers.
    pub gc_runs: u64,
    /// Mean end-to-end latency in microseconds.
    pub mean_latency_us: f64,
}

/// Result of a simulation: the trace dataset plus run statistics.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Per-IO traces with five-stage latencies, time-sorted.
    pub traces: TraceSet,
    /// Aggregate statistics.
    pub stats: SimStats,
}

/// Local per-run metric recorder, allocated only when `EBS_OBS` is on.
/// Records into private histograms during the event loop (no shared lock
/// on the hot path) and merges into the global registry once at the end,
/// so instrumentation can never reorder or perturb the simulation.
pub(crate) struct StackObs {
    queue_wait: ebs_obs::Histogram,
    stage_compute: ebs_obs::Histogram,
    stage_frontend: ebs_obs::Histogram,
    stage_block_server: ebs_obs::Histogram,
    stage_backend: ebs_obs::Histogram,
    stage_chunk_server: ebs_obs::Histogram,
    total: ebs_obs::Histogram,
}

impl StackObs {
    pub(crate) fn new() -> Self {
        Self {
            queue_wait: ebs_obs::Histogram::new(0.0, 10_000.0, 40),
            stage_compute: ebs_obs::Histogram::new(0.0, 20_000.0, 40),
            stage_frontend: ebs_obs::Histogram::new(0.0, 2_000.0, 40),
            stage_block_server: ebs_obs::Histogram::new(0.0, 2_000.0, 40),
            stage_backend: ebs_obs::Histogram::new(0.0, 2_000.0, 40),
            stage_chunk_server: ebs_obs::Histogram::new(0.0, 5_000.0, 40),
            total: ebs_obs::Histogram::new(0.0, 50_000.0, 50),
        }
    }

    pub(crate) fn record_io(&mut self, wait_us: f64, lat: &StageLatency) {
        self.queue_wait.add(wait_us);
        self.stage_compute.add(lat.compute_us);
        self.stage_frontend.add(lat.frontend_us);
        self.stage_block_server.add(lat.block_server_us);
        self.stage_backend.add(lat.backend_us);
        self.stage_chunk_server.add(lat.chunk_server_us);
        self.total.add(lat.total_us());
    }

    /// Publish the run's metrics to the global registry in one merge.
    pub(crate) fn finish(self, stats: &SimStats, engines: &[ChunkServer]) {
        let mut reg = ebs_obs::Registry::new();
        reg.counter_add("stack.sim.ios", stats.ios);
        reg.counter_add("stack.throttle_gate.fires", stats.throttled);
        reg.counter_add("stack.prefetch.hits", stats.prefetch_hits);
        reg.counter_add("stack.prefetch.lookups", stats.ios);
        reg.counter_add("stack.gc.runs", stats.gc_runs);
        reg.merge_hist("stack.queue.wait_us", &self.queue_wait);
        reg.merge_hist("stack.lat.compute_us", &self.stage_compute);
        reg.merge_hist("stack.lat.frontend_us", &self.stage_frontend);
        reg.merge_hist("stack.lat.block_server_us", &self.stage_block_server);
        reg.merge_hist("stack.lat.backend_us", &self.stage_backend);
        reg.merge_hist("stack.lat.chunk_server_us", &self.stage_chunk_server);
        reg.merge_hist("stack.lat.total_us", &self.total);
        // GC pressure multiplier across engines ([1, 2] by construction).
        for engine in engines {
            reg.observe("stack.gc.pressure", 1.0, 2.0, 20, engine.gc_pressure());
        }
        ebs_obs::merge(&reg);
    }
}

// ---------------------------------------------------------------------
// Stage classes: the six latency columns a run draws from, in the order
// the reference samples them within one event.

const STAGE_COMPUTE: usize = 0;
const STAGE_FRONTEND: usize = 1;
const STAGE_BLOCK_SERVER: usize = 2;
const STAGE_BACKEND: usize = 3;
const STAGE_CS_READ: usize = 4;
const STAGE_CS_WRITE: usize = 5;
const STAGE_COUNT: usize = 6;

fn stage_params(latency: &LatencyModel) -> [&StageParams; STAGE_COUNT] {
    [
        &latency.compute,
        &latency.frontend,
        &latency.block_server,
        &latency.backend,
        &latency.cs_read,
        &latency.cs_write,
    ]
}

/// The RNG-free state machines of pass A — per-VD throttle gates, per-BS
/// prefetchers, per-SN GC engines, and the fabric links. They live
/// *outside* the per-slice pass so a [`SimSession`] can carry them across
/// epoch steps: replaying a stream slice-by-slice drives exactly the same
/// machine trajectory as one batch pass.
struct Machines {
    gates: Vec<Option<VdGate>>,
    /// Per-VD lending multiplier currently applied on top of the
    /// subscribed caps (1.0 = no grant outstanding).
    cap_scale: Vec<f64>,
    prefetchers: Vec<Prefetcher>,
    engines: Vec<ChunkServer>,
    fabric: FabricModel,
}

impl Machines {
    fn new(fleet: &Fleet, config: &StackConfig) -> Self {
        let gates: Vec<Option<VdGate>> = if config.apply_throttle {
            fleet
                .vds
                .iter()
                .map(|vd| {
                    let mut spec = vd.spec;
                    spec.tput_cap *= config.throttle_scale;
                    spec.iops_cap *= config.throttle_scale;
                    Some(VdGate::for_spec(&spec))
                })
                .collect()
        } else {
            vec![None; fleet.vds.len()]
        };
        Self {
            gates,
            cap_scale: vec![1.0; fleet.vds.len()],
            // One prefetcher per BlockServer, one engine per storage node.
            prefetchers: (0..fleet.block_servers.len())
                .map(|_| Prefetcher::new())
                .collect(),
            engines: (0..fleet.storage_nodes.len())
                .map(|_| ChunkServer::new(config.cs_capacity_bytes, config.gc_threshold))
                .collect(),
            fabric: FabricModel::new(fleet.compute_nodes.len(), fleet.storage_nodes.len()),
        }
    }
}

/// Pass A output: per-event columns from the RNG-free state machines,
/// plus the slice's counters (the machines themselves persist in
/// [`Machines`]).
struct StateCols {
    throttle_us: Vec<f64>,
    congestion_f: Vec<f64>,
    /// Backend congestion for non-prefetched events (1.0 elsewhere).
    congestion_b: Vec<f64>,
    prefetched: Vec<bool>,
    /// GC-pressure multiplier read before each write's append (1.0 for
    /// reads, which never consult the engine's pressure).
    pressure: Vec<f64>,
    throttled: u64,
    prefetch_hits: u64,
    gc_runs: u64,
}

/// Replay the deterministic (RNG-free) state machines — throttle gates,
/// prefetchers, GC engines, fabric links — in event order, advancing
/// `machines` in place.
fn pass_a(
    machines: &mut Machines,
    config: &StackConfig,
    plan: &RoutePlan,
    events: &[IoEvent],
) -> StateCols {
    let n = events.len();
    let mut cols = StateCols {
        throttle_us: Vec::with_capacity(n),
        congestion_f: Vec::with_capacity(n),
        congestion_b: Vec::with_capacity(n),
        prefetched: Vec::with_capacity(n),
        pressure: Vec::with_capacity(n),
        throttled: 0,
        prefetch_hits: 0,
        gc_runs: 0,
    };
    for (i, ev) in events.iter().enumerate() {
        let t = ev.t_us as f64;
        let throttle_us = match &mut machines.gates[ev.vd.index()] {
            Some(gate) => {
                let d = gate.admit(t, ev.size);
                if d > 0.0 {
                    cols.throttled += 1;
                }
                d
            }
            None => 0.0,
        };
        cols.throttle_us.push(throttle_us);
        let congestion_f = if config.model_congestion {
            machines
                .fabric
                .frontend_transfer(plan.cn()[i].index(), t, ev.size as f64)
        } else {
            1.0
        };
        cols.congestion_f.push(congestion_f);
        let prefetched = machines.prefetchers[plan.bs()[i].index()].observe(plan.seg()[i], ev);
        if prefetched {
            cols.prefetch_hits += 1;
        }
        cols.prefetched.push(prefetched);
        let sn = plan.sn()[i].index();
        // The reference only touches the backend link for events that
        // reach the ChunkServer, so prefetch hits must not advance it.
        let congestion_b = if !prefetched && config.model_congestion {
            machines.fabric.backend_transfer(sn, t, ev.size as f64)
        } else {
            1.0
        };
        cols.congestion_b.push(congestion_b);
        let engine = &mut machines.engines[sn];
        // Writes read the pressure multiplier *before* their own append.
        cols.pressure.push(if ev.op == Op::Write {
            engine.gc_pressure()
        } else {
            1.0
        });
        if ev.op == Op::Write && engine.append(ev.size as f64, config.overwrite_frac) {
            cols.gc_runs += 1;
        }
    }
    cols
}

/// Pass B1 output: the raw randomness of every latency sample, grouped by
/// stage class (within a class, slots appear in event order). These
/// columns depend on the seed, the draw schedule (op + prefetch column +
/// replica count), and nothing else — no latency parameter touches them.
struct DrawCols {
    g: [Vec<f64>; STAGE_COUNT],
    u_tail: [Vec<f64>; STAGE_COUNT],
    size: [Vec<u32>; STAGE_COUNT],
}

impl DrawCols {
    fn draw(&mut self, class: usize, rng: &mut ebs_core::rng::SimRng, size: u32) {
        let (g, u_tail) = StageParams::draw_units(rng);
        self.g[class].push(g);
        self.u_tail[class].push(u_tail);
        self.size[class].push(size);
    }
}

/// Drain the `stack/latency` RNG stream in exactly the reference's
/// per-event order into parameter-independent unit columns, starting from
/// a fresh stream (the batch path).
fn pass_b1(config: &StackConfig, events: &[IoEvent], a: &StateCols) -> DrawCols {
    let rngf = RngFactory::new(config.seed).child("stack");
    let mut rng = rngf.stream("latency");
    pass_b1_with(&mut rng, config, events, a)
}

/// [`pass_b1`] over a caller-owned RNG stream: a [`SimSession`] advances
/// one persistent stream across epoch steps, so the draws of slice k+1
/// continue exactly where slice k stopped — the whole point of the
/// session being bit-identical to a batch run.
fn pass_b1_with(
    rng: &mut ebs_core::rng::SimRng,
    config: &StackConfig,
    events: &[IoEvent],
    a: &StateCols,
) -> DrawCols {
    let mut d = DrawCols {
        g: Default::default(),
        u_tail: Default::default(),
        size: Default::default(),
    };
    let n = events.len();
    let replicas = config.replication.replicas as usize;
    let mut writes_np = 0usize;
    let mut reads_np = 0usize;
    for (ev, pf) in events.iter().zip(&a.prefetched) {
        if !pf {
            match ev.op {
                Op::Write => writes_np += 1,
                Op::Read => reads_np += 1,
            }
        }
    }
    for (c, cap) in [
        (STAGE_COMPUTE, n),
        (STAGE_FRONTEND, n),
        (STAGE_BLOCK_SERVER, n),
        (STAGE_BACKEND, writes_np + reads_np),
        (STAGE_CS_READ, reads_np),
        (STAGE_CS_WRITE, writes_np * replicas),
    ] {
        d.g[c].reserve(cap);
        d.u_tail[c].reserve(cap);
        d.size[c].reserve(cap);
    }
    for (i, ev) in events.iter().enumerate() {
        d.draw(STAGE_COMPUTE, rng, ev.size);
        d.draw(STAGE_FRONTEND, rng, ev.size);
        d.draw(STAGE_BLOCK_SERVER, rng, ev.size);
        if !a.prefetched[i] {
            d.draw(STAGE_BACKEND, rng, ev.size);
            match ev.op {
                Op::Write => {
                    for _ in 0..replicas {
                        d.draw(STAGE_CS_WRITE, rng, ev.size);
                    }
                }
                Op::Read => d.draw(STAGE_CS_READ, rng, ev.size),
            }
        }
    }
    d
}

/// Evaluated stage columns: one latency value per drawn sample, before
/// congestion / GC-pressure / quorum arithmetic (pass C's job).
struct StageCols {
    values: [Rc<Vec<f64>>; STAGE_COUNT],
}

/// Cache of evaluated stage columns keyed by the stage's parameter bits.
/// A sweep point that leaves a stage's parameters untouched reuses the
/// column instead of re-running the `exp`-heavy kernel.
#[derive(Default)]
struct StageCache {
    map: [FxHashMap<[u64; 5], Rc<Vec<f64>>>; STAGE_COUNT],
}

/// Bound on retained columns per stage before the cache resets; sweeps
/// vary a handful of parameter points, so this is never hit in practice.
const STAGE_CACHE_MAX: usize = 64;

fn stage_key(p: &StageParams) -> [u64; 5] {
    [
        p.base_us.to_bits(),
        p.bytes_per_us.to_bits(),
        p.jitter_sigma.to_bits(),
        p.tail_prob.to_bits(),
        p.tail_mult.to_bits(),
    ]
}

/// Evaluate all six stage columns from the pre-drawn units, reusing
/// cached columns for stages whose parameters match a prior evaluation.
fn pass_b2(
    latency: &LatencyModel,
    draws: &DrawCols,
    mut cache: Option<&mut StageCache>,
) -> StageCols {
    let params = stage_params(latency);
    let values = std::array::from_fn(|c| {
        let p = params[c];
        if let Some(cache) = cache.as_deref_mut() {
            let slot = &mut cache.map[c];
            if let Some(col) = slot.get(&stage_key(p)) {
                return Rc::clone(col);
            }
            if slot.len() >= STAGE_CACHE_MAX {
                slot.clear();
            }
        }
        let col = Rc::new(eval_stage(p, draws, c));
        if let Some(cache) = cache.as_deref_mut() {
            cache.map[c].insert(stage_key(p), Rc::clone(&col));
        }
        col
    });
    StageCols { values }
}

/// The tight column kernel: evaluate one stage's samples from its units.
fn eval_stage(p: &StageParams, draws: &DrawCols, class: usize) -> Vec<f64> {
    draws.g[class]
        .iter()
        .zip(&draws.u_tail[class])
        .zip(&draws.size[class])
        .map(|((&g, &u_tail), &size)| p.eval(g, u_tail, size))
        .collect()
}

/// The persistent half of pass C: WT busy-until clocks, the DiTing id
/// counter, the optional obs recorder, and the running aggregates. A batch
/// run owns one for the duration of the run; a [`SimSession`] carries one
/// across epoch steps so slice-by-slice serving accumulates *exactly* the
/// batch totals (same u64 sums, same f64 summation order).
struct SimCore {
    queues: WtQueues,
    diting: Diting,
    obs: Option<StackObs>,
    ios: u64,
    throttled: u64,
    prefetch_hits: u64,
    gc_runs: u64,
    total_latency: f64,
}

impl SimCore {
    fn new(fleet: &Fleet) -> Self {
        Self {
            queues: WtQueues::new(fleet.wt_total),
            diting: Diting::new(),
            obs: ebs_obs::enabled().then(StackObs::new),
            ios: 0,
            throttled: 0,
            prefetch_hits: 0,
            gc_runs: 0,
            total_latency: 0.0,
        }
    }

    /// Aggregate statistics accumulated so far.
    fn aggregate(&self) -> SimStats {
        SimStats {
            ios: self.ios,
            throttled: self.throttled,
            prefetch_hits: self.prefetch_hits,
            gc_runs: self.gc_runs,
            mean_latency_us: if self.ios > 0 {
                self.total_latency / self.ios as f64
            } else {
                0.0
            },
        }
    }

    /// Publish the accumulated obs metrics (if recording) and return the
    /// aggregate stats. Consumes the core: a run publishes exactly once.
    fn finish(self, engines: &[ChunkServer]) -> SimStats {
        let stats = self.aggregate();
        if let Some(o) = self.obs {
            o.finish(&stats, engines);
        }
        stats
    }
}

/// Pass C: WT queueing, congestion/replication/GC arithmetic, and DiTing
/// record assembly over the columns. Returns the *slice's* output (for a
/// batch run the slice is the whole stream) while accumulating aggregates
/// into `core`.
fn pass_c(
    fleet: &Fleet,
    config: &StackConfig,
    events: &[IoEvent],
    plan: &RoutePlan,
    a: &StateCols,
    cols: &StageCols,
    core: &mut SimCore,
) -> SimOutput {
    let mut records: Vec<TraceRecord> = Vec::with_capacity(events.len());
    let mut stats = SimStats {
        ios: events.len() as u64,
        throttled: a.throttled,
        prefetch_hits: a.prefetch_hits,
        gc_runs: a.gc_runs,
        mean_latency_us: 0.0,
    };
    let mut total_latency = 0.0;
    let replicas = config.replication.replicas as usize;
    let quorum = config.replication.quorum as usize;
    // Cursors into the per-class columns (slots are in event order).
    let (mut j_backend, mut j_cs_read, mut j_cs_write) = (0usize, 0usize, 0usize);
    let mut write_acks: Vec<f64> = Vec::with_capacity(replicas);
    for (i, ev) in events.iter().enumerate() {
        let t = ev.t_us as f64;
        let throttle_us = a.throttle_us[i];
        let wt = plan.wt()[i];
        let service = cols.values[STAGE_COMPUTE][i];
        let wait = core.queues.serve(wt, t + throttle_us, service);
        let compute_us = throttle_us + wait + service;
        let frontend_us = cols.values[STAGE_FRONTEND][i] * a.congestion_f[i];
        let block_server_us = cols.values[STAGE_BLOCK_SERVER][i];
        let (backend_us, chunk_server_us) = if a.prefetched[i] {
            (0.0, 0.0)
        } else {
            let backend = cols.values[STAGE_BACKEND][j_backend] * a.congestion_b[i];
            j_backend += 1;
            let cs = match ev.op {
                Op::Write => {
                    // Replicated append: slowest required ack, scaled by
                    // the engine's GC pressure.
                    write_acks.clear();
                    write_acks.extend_from_slice(
                        &cols.values[STAGE_CS_WRITE][j_cs_write..j_cs_write + replicas],
                    );
                    j_cs_write += replicas;
                    write_acks.sort_by(|x, y| x.partial_cmp(y).expect("latencies are finite"));
                    write_acks[quorum - 1] * a.pressure[i]
                }
                Op::Read => {
                    let v = cols.values[STAGE_CS_READ][j_cs_read];
                    j_cs_read += 1;
                    v
                }
            };
            (backend, cs)
        };
        let lat = StageLatency {
            compute_us,
            frontend_us,
            block_server_us,
            backend_us,
            chunk_server_us,
        };
        total_latency += lat.total_us();
        // Aggregate per event, not per slice: the session's running total
        // must follow the exact f64 summation order of a batch run.
        core.total_latency += lat.total_us();
        if let Some(o) = core.obs.as_mut() {
            o.record_io(wait, &lat);
        }
        records.push(core.diting.record_routed(
            fleet,
            ev,
            wt,
            plan.seg()[i],
            plan.bs()[i],
            plan.sn()[i],
            lat,
        ));
    }
    core.ios += stats.ios;
    core.throttled += stats.throttled;
    core.prefetch_hits += stats.prefetch_hits;
    core.gc_runs += stats.gc_runs;
    stats.mean_latency_us = if stats.ios > 0 {
        total_latency / stats.ios as f64
    } else {
        0.0
    };
    SimOutput {
        traces: TraceSet::from_records(records),
        stats,
    }
}

/// The simulator itself. One instance per run.
pub struct StackSim<'a> {
    fleet: &'a Fleet,
    config: StackConfig,
    binding: Binding,
    seg_map: SegmentMap,
}

impl<'a> StackSim<'a> {
    /// A simulator over `fleet` with the fleet's initial QP binding and
    /// segment placement.
    pub fn new(fleet: &'a Fleet, config: StackConfig) -> Self {
        Self {
            fleet,
            config,
            binding: Binding::from_fleet(fleet),
            seg_map: SegmentMap::from_fleet(fleet),
        }
    }

    /// Replace the QP→WT binding (for rebinding experiments).
    pub fn with_binding(mut self, binding: Binding) -> Self {
        self.binding = binding;
        self
    }

    /// Replace the segment placement (for balancer experiments).
    pub fn with_segment_map(mut self, seg_map: SegmentMap) -> Self {
        self.seg_map = seg_map;
        self
    }

    /// Resolve the routing of `events` under this simulator's binding and
    /// segment map (validates time-sortedness once). The plan can be
    /// shared by every run over the same slice.
    pub fn plan(&self, events: &[IoEvent]) -> Result<RoutePlan, EbsError> {
        RoutePlan::build(self.fleet, &self.binding, &self.seg_map, events)
    }

    /// Like [`Self::plan`], reusing the shared [`EventIndex`]'s per-VD
    /// segment table.
    pub fn plan_with_index(
        &self,
        events: &[IoEvent],
        idx: &EventIndex,
    ) -> Result<RoutePlan, EbsError> {
        RoutePlan::build_with_index(self.fleet, &self.binding, &self.seg_map, events, idx)
    }

    /// Route `events` (must be time-sorted) through the stack.
    pub fn run(&mut self, events: &[IoEvent]) -> Result<SimOutput, EbsError> {
        let plan = self.plan(events)?;
        self.run_planned(events, &plan)
    }

    /// Route `events` through the stack using a prebuilt [`RoutePlan`]
    /// (already validated as time-sorted at plan construction).
    ///
    /// Implemented as a one-step [`SimSession`], which is what guarantees
    /// that serving the same stream epoch-by-epoch reproduces this batch
    /// run bit-for-bit: both paths are the same code.
    pub fn run_planned(&self, events: &[IoEvent], plan: &RoutePlan) -> Result<SimOutput, EbsError> {
        let mut session = SimSession::new(self.fleet, self.config.clone())?;
        let out = session.step(events, plan)?;
        session.finish();
        Ok(out)
    }
}

/// A *resumable* simulation: the same staged pipeline as
/// [`StackSim::run_planned`], but with every piece of cross-event state —
/// throttle-gate buckets, prefetch buffers, GC engines, fabric links, the
/// `stack/latency` RNG stream, WT busy-until clocks, DiTing trace ids,
/// and the aggregate accumulators — held in the session between calls to
/// [`Self::step`].
///
/// Stepping a time-sorted stream through a session slice-by-slice (in
/// order, with each slice's own route plan) produces the identical record
/// stream and identical [`Self::finish`] aggregate as one batch
/// `run_planned` over the concatenation: the serve mode's foundational
/// invariant, pinned by the `ebs-serve` differential tests.
///
/// Between steps the caller may change the *routing* (rebuild the next
/// plan from an updated [`Binding`] or [`SegmentMap`]) and the *caps*
/// ([`Self::scale_vd_caps`]); both model online control-plane actions and
/// intentionally diverge from the batch run.
pub struct SimSession<'a> {
    fleet: &'a Fleet,
    config: StackConfig,
    machines: Machines,
    rng: ebs_core::rng::SimRng,
    core: SimCore,
}

impl<'a> SimSession<'a> {
    /// Start a session over `fleet` with `config` (validates the
    /// replication policy once, like a batch run).
    pub fn new(fleet: &'a Fleet, config: StackConfig) -> Result<Self, EbsError> {
        config.replication.validate()?;
        let machines = Machines::new(fleet, &config);
        let rng = RngFactory::new(config.seed)
            .child("stack")
            .stream("latency");
        Ok(Self {
            fleet,
            config,
            machines,
            rng,
            core: SimCore::new(fleet),
        })
    }

    /// The session's configuration.
    pub fn config(&self) -> &StackConfig {
        &self.config
    }

    /// Simulate the next slice of the stream under `plan`. Slices must
    /// arrive in stream order; the returned output carries the *slice's*
    /// traces and stats (its `mean_latency_us` is the slice mean).
    pub fn step(&mut self, events: &[IoEvent], plan: &RoutePlan) -> Result<SimOutput, EbsError> {
        if plan.len() != events.len() {
            return Err(EbsError::invalid_config(
                "route plan does not cover the event slice",
            ));
        }
        let a = pass_a(&mut self.machines, &self.config, plan, events);
        let draws = pass_b1_with(&mut self.rng, &self.config, events, &a);
        let cols = pass_b2(&self.config.latency, &draws, None);
        Ok(pass_c(
            self.fleet,
            &self.config,
            events,
            plan,
            &a,
            &cols,
            &mut self.core,
        ))
    }

    /// Scale one VD's throttle caps to `scale ×` its subscribed caps (an
    /// online lending grant when `> 1`, a reclaim at `1.0`). Takes effect
    /// from the next admitted IO; banked tokens are clamped, never
    /// refunded. Returns `false` (and does nothing) when throttling is
    /// off, the VD is unknown, or `scale` is not a positive finite number.
    pub fn scale_vd_caps(&mut self, vd: ebs_core::ids::VdId, scale: f64) -> bool {
        if !self.config.apply_throttle || scale <= 0.0 || !scale.is_finite() {
            return false;
        }
        let Some(vd_state) = self.fleet.vds.get(vd) else {
            return false;
        };
        let Some(Some(gate)) = self.machines.gates.get_mut(vd.index()) else {
            return false;
        };
        let mut spec = vd_state.spec;
        spec.tput_cap *= self.config.throttle_scale * scale;
        spec.iops_cap *= self.config.throttle_scale * scale;
        gate.retarget(&spec);
        if let Some(slot) = self.machines.cap_scale.get_mut(vd.index()) {
            *slot = scale;
        }
        true
    }

    /// The lending multiplier currently applied to `vd` (1.0 = none).
    pub fn vd_cap_scale(&self, vd: ebs_core::ids::VdId) -> f64 {
        self.machines
            .cap_scale
            .get(vd.index())
            .copied()
            .unwrap_or(1.0)
    }

    /// Aggregate statistics over every step so far.
    pub fn aggregate(&self) -> SimStats {
        self.core.aggregate()
    }

    /// End the session: publish obs metrics (exactly once, like a batch
    /// run) and return the aggregate stats.
    pub fn finish(self) -> SimStats {
        self.core.finish(&self.machines.engines)
    }
}

/// A config sweep over one event slice: pass A and pass B1 run once, and
/// every [`Self::run_point`] reuses them (plus any stage columns whose
/// parameters it doesn't change), so a K-point latency sweep costs one
/// state-machine replay + one RNG drain + K cheap evaluate/assemble
/// passes instead of K full simulations.
///
/// Sweep points may vary the latency model, `prefetch_discount`, and the
/// replication *quorum*; everything that shapes pass A or the draw
/// schedule (seed, throttle, engine, congestion, replica count) must
/// match the base config, enforced by [`Self::run_point`].
pub struct StackSweep<'a> {
    fleet: &'a Fleet,
    events: &'a [IoEvent],
    plan: &'a RoutePlan,
    base: StackConfig,
    machines: Machines,
    a: StateCols,
    draws: DrawCols,
    cache: StageCache,
}

impl<'a> StackSweep<'a> {
    /// Prepare a sweep over `events` with `plan` routing and `base`
    /// config. Runs pass A and pass B1 once.
    pub fn new(
        fleet: &'a Fleet,
        events: &'a [IoEvent],
        plan: &'a RoutePlan,
        base: StackConfig,
    ) -> Result<Self, EbsError> {
        if plan.len() != events.len() {
            return Err(EbsError::invalid_config(
                "route plan does not cover the event slice",
            ));
        }
        base.replication.validate()?;
        let mut machines = Machines::new(fleet, &base);
        let a = pass_a(&mut machines, &base, plan, events);
        let draws = pass_b1(&base, events, &a);
        Ok(Self {
            fleet,
            events,
            plan,
            base,
            machines,
            a,
            draws,
            cache: StageCache::default(),
        })
    }

    /// Simulate one config point, byte-identical to a full
    /// [`StackSim::run`] with `config`.
    pub fn run_point(&mut self, config: &StackConfig) -> Result<SimOutput, EbsError> {
        let b = &self.base;
        let compatible = config.seed == b.seed
            && config.apply_throttle == b.apply_throttle
            && config.throttle_scale == b.throttle_scale
            && config.cs_capacity_bytes == b.cs_capacity_bytes
            && config.gc_threshold == b.gc_threshold
            && config.overwrite_frac == b.overwrite_frac
            && config.model_congestion == b.model_congestion
            && config.replication.replicas == b.replication.replicas;
        if !compatible {
            return Err(EbsError::invalid_config(
                "sweep point changes non-sweepable config \
                 (seed/throttle/engine/congestion/replica count)",
            ));
        }
        config.replication.validate()?;
        let cols = pass_b2(&config.latency, &self.draws, Some(&mut self.cache));
        let mut core = SimCore::new(self.fleet);
        let out = pass_c(
            self.fleet,
            config,
            self.events,
            self.plan,
            &self.a,
            &cols,
            &mut core,
        );
        core.finish(&self.machines.engines);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_workload::{generate, WorkloadConfig};

    fn simulate(seed: u64) -> (SimOutput, usize) {
        let ds = generate(&WorkloadConfig::quick(seed)).unwrap();
        let mut sim = StackSim::new(&ds.fleet, StackConfig::default());
        let out = sim.run(&ds.events).unwrap();
        (out, ds.events.len())
    }

    #[test]
    fn every_event_becomes_a_trace() {
        let (out, n) = simulate(31);
        assert_eq!(out.traces.len(), n);
        assert_eq!(out.stats.ios as usize, n);
    }

    #[test]
    fn latencies_are_positive_and_structured() {
        let (out, _) = simulate(32);
        for r in out.traces.records() {
            assert!(r.lat.total_us() > 0.0);
            assert!(r.lat.compute_us > 0.0);
            // CN-cache latency ≤ BS-cache latency ≤ total.
            assert!(r.lat.cn_cache_us() <= r.lat.bs_cache_us() + 1e-9);
            assert!(r.lat.bs_cache_us() <= r.lat.total_us() + 1e-9);
        }
        assert!(out.stats.mean_latency_us > 0.0);
    }

    #[test]
    fn writes_slower_than_reads_on_average() {
        // Compare the raw device path: disable throttling so huge read
        // bursts don't pick up multi-second throttle queueing.
        let ds = generate(&WorkloadConfig::quick(33)).unwrap();
        let cfg = StackConfig {
            apply_throttle: false,
            ..StackConfig::default()
        };
        let mut sim = StackSim::new(&ds.fleet, cfg);
        let out = sim.run(&ds.events).unwrap();
        let (mut rsum, mut rcnt, mut wsum, mut wcnt) = (0.0, 0u32, 0.0, 0u32);
        for r in out.traces.records() {
            if r.op.is_read() {
                rsum += r.lat.total_us();
                rcnt += 1;
            } else {
                wsum += r.lat.total_us();
                wcnt += 1;
            }
        }
        assert!(rcnt > 0 && wcnt > 0);
        assert!(wsum / wcnt as f64 > rsum / rcnt as f64);
    }

    #[test]
    fn simulation_is_deterministic() {
        let (a, _) = simulate(34);
        let (b, _) = simulate(34);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.traces.records()[0], b.traces.records()[0]);
    }

    #[test]
    fn unsorted_events_are_rejected() {
        let ds = generate(&WorkloadConfig::quick(35)).unwrap();
        let mut events = ds.events;
        let last = events.len() - 1;
        assert!(last > 0, "need at least two events");
        events.swap(0, last);
        let mut sim = StackSim::new(&ds.fleet, StackConfig::default());
        assert!(sim.run(&events).is_err());
    }

    #[test]
    fn disabling_throttle_removes_throttle_delays() {
        let ds = generate(&WorkloadConfig::quick(36)).unwrap();
        let cfg = StackConfig {
            apply_throttle: false,
            ..StackConfig::default()
        };
        let mut sim = StackSim::new(&ds.fleet, cfg);
        let out = sim.run(&ds.events).unwrap();
        assert_eq!(out.stats.throttled, 0);
    }

    #[test]
    fn replication_lengthens_write_latency() {
        let ds = generate(&WorkloadConfig::quick(38)).unwrap();
        let mean_write = |policy| {
            let cfg = StackConfig {
                apply_throttle: false,
                replication: policy,
                ..StackConfig::default()
            };
            let mut sim = StackSim::new(&ds.fleet, cfg);
            let out = sim.run(&ds.events).unwrap();
            let (sum, n) = out
                .traces
                .records()
                .iter()
                .filter(|r| r.op.is_write())
                .fold((0.0, 0u32), |(s, n), r| (s + r.lat.chunk_server_us, n + 1));
            sum / n as f64
        };
        let single = mean_write(crate::replication::ReplicationPolicy::NONE);
        let triple = mean_write(crate::replication::ReplicationPolicy::THREE_WAY);
        assert!(
            triple > single * 1.1,
            "3-way {triple:.0} vs 1-way {single:.0}"
        );
    }

    #[test]
    fn trace_entities_match_fleet_topology() {
        let (out, _) = simulate(37);
        let ds = generate(&WorkloadConfig::quick(37)).unwrap();
        for r in out.traces.records().iter().take(500) {
            assert_eq!(ds.fleet.vds[r.vd].vm, r.vm);
            assert_eq!(ds.fleet.vms[r.vm].cn, r.cn);
            assert_eq!(ds.fleet.cn_of_wt(r.wt), r.cn);
            assert_eq!(ds.fleet.block_servers[r.bs].sn, r.sn);
        }
    }

    #[test]
    fn shared_plan_reproduces_per_run_output() {
        let ds = generate(&WorkloadConfig::quick(40)).unwrap();
        let mut sim = StackSim::new(&ds.fleet, StackConfig::default());
        let direct = sim.run(&ds.events).unwrap();
        let plan = sim.plan(&ds.events).unwrap();
        let planned = sim.run_planned(&ds.events, &plan).unwrap();
        assert_eq!(direct.stats, planned.stats);
        assert_eq!(direct.traces.records(), planned.traces.records());
    }

    #[test]
    fn sweep_points_match_standalone_runs() {
        let ds = generate(&WorkloadConfig::quick(41)).unwrap();
        let base = StackConfig::default();
        let sim = StackSim::new(&ds.fleet, base.clone());
        let plan = sim.plan(&ds.events).unwrap();
        let mut sweep = StackSweep::new(&ds.fleet, &ds.events, &plan, base.clone()).unwrap();
        for k in 0..4u32 {
            let mut cfg = base.clone();
            cfg.latency.cs_write.base_us *= 1.0 + 0.25 * k as f64;
            cfg.latency.frontend.jitter_sigma *= 1.0 + 0.1 * k as f64;
            let swept = sweep.run_point(&cfg).unwrap();
            let mut standalone = StackSim::new(&ds.fleet, cfg);
            let full = standalone.run(&ds.events).unwrap();
            assert_eq!(full.stats, swept.stats);
            assert_eq!(full.traces.records(), swept.traces.records());
        }
    }

    #[test]
    fn session_steps_concatenate_to_batch_run() {
        let ds = generate(&WorkloadConfig::quick(43)).unwrap();
        let mut sim = StackSim::new(&ds.fleet, StackConfig::default());
        let batch = sim.run(&ds.events).unwrap();

        let mut session = SimSession::new(&ds.fleet, StackConfig::default()).unwrap();
        let mut records = Vec::new();
        // Uneven slice boundaries, including an empty slice.
        let n = ds.events.len();
        let cuts = [0, n / 3, n / 3, n / 2, (3 * n) / 4, n];
        for pair in cuts.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            let slice = &ds.events[lo..hi];
            // Per-slice plans, exactly how the serve loop routes epochs.
            let sub = sim.plan(slice).unwrap();
            let out = session.step(slice, &sub).unwrap();
            records.extend_from_slice(out.traces.records());
        }
        let agg = session.finish();
        assert_eq!(agg, batch.stats);
        assert_eq!(records.len(), batch.traces.records().len());
        assert_eq!(records, batch.traces.records());
    }

    #[test]
    fn session_cap_scaling_reduces_throttling() {
        let ds = generate(&WorkloadConfig::quick(44)).unwrap();
        let base = {
            let mut s = SimSession::new(&ds.fleet, StackConfig::default()).unwrap();
            let plan = StackSim::new(&ds.fleet, StackConfig::default())
                .plan(&ds.events)
                .unwrap();
            s.step(&ds.events, &plan).unwrap();
            s.finish()
        };
        assert!(base.throttled > 0, "quick workload must throttle somewhere");
        let mut s = SimSession::new(&ds.fleet, StackConfig::default()).unwrap();
        for vd in 0..ds.fleet.vd_count() {
            let id = ebs_core::ids::VdId(vd as u32);
            assert!(s.scale_vd_caps(id, 100.0));
            assert_eq!(s.vd_cap_scale(id), 100.0);
        }
        let plan = StackSim::new(&ds.fleet, StackConfig::default())
            .plan(&ds.events)
            .unwrap();
        s.step(&ds.events, &plan).unwrap();
        let scaled = s.finish();
        assert!(
            scaled.throttled < base.throttled,
            "100x caps should throttle less: {} vs {}",
            scaled.throttled,
            base.throttled
        );
    }

    #[test]
    fn sweep_rejects_non_sweepable_changes() {
        let ds = generate(&WorkloadConfig::quick(42)).unwrap();
        let base = StackConfig::default();
        let sim = StackSim::new(&ds.fleet, base.clone());
        let plan = sim.plan(&ds.events).unwrap();
        let mut sweep = StackSweep::new(&ds.fleet, &ds.events, &plan, base.clone()).unwrap();
        let mut bad_seed = base.clone();
        bad_seed.seed ^= 1;
        assert!(sweep.run_point(&bad_seed).is_err());
        let mut bad_replicas = base.clone();
        bad_replicas.replication = ReplicationPolicy::NONE;
        assert!(sweep.run_point(&bad_replicas).is_err());
        // Quorum-only changes are sweepable.
        let mut majority = base;
        majority.replication = ReplicationPolicy::THREE_WAY_MAJORITY;
        assert!(sweep.run_point(&majority).is_ok());
    }
}
