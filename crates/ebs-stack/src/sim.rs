//! The end-to-end stack simulator.
//!
//! [`StackSim::run`] routes a time-ordered stream of sampled IO events
//! through the full path of Figure 1: QP → worker thread (with single-
//! server queueing), optional per-VD throttle, frontend network,
//! BlockServer (address translation + prefetch), backend network, and
//! ChunkServer (append-only engine with GC pressure) — and hands each IO to
//! DiTing to produce the paper's trace dataset with the five-stage latency
//! breakdown.

use crate::block_server::Prefetcher;
use crate::chunk_server::ChunkServer;
use crate::diting::Diting;
use crate::hypervisor::{Binding, WtQueues};
use crate::latency::LatencyModel;
use crate::network::FabricModel;
use crate::replication::ReplicationPolicy;
use crate::segment::SegmentMap;
use crate::throttle_gate::VdGate;
use ebs_core::error::EbsError;
use ebs_core::io::{IoEvent, Op};
use ebs_core::rng::RngFactory;
use ebs_core::topology::Fleet;
use ebs_core::trace::{StageLatency, TraceRecord, TraceSet};
use ebs_core::units::TRACE_SAMPLE_RATE;

/// Stack-simulation configuration.
#[derive(Clone, Debug)]
pub struct StackConfig {
    /// Seed for latency jitter and tail draws.
    pub seed: u64,
    /// Apply the per-VD dual token-bucket throttle.
    pub apply_throttle: bool,
    /// Because the simulator sees the 1/3200-sampled stream, throttle caps
    /// are scaled by this factor so the gates fire at the same relative
    /// load as they would on the full population. Set to 1.0 when feeding
    /// unsampled streams.
    pub throttle_scale: f64,
    /// Latency model.
    pub latency: LatencyModel,
    /// Raw SSD capacity per ChunkServer in bytes (GC accounting).
    pub cs_capacity_bytes: f64,
    /// Garbage fraction that triggers GC.
    pub gc_threshold: f64,
    /// Fraction of write bytes that overwrite live data (creates garbage).
    pub overwrite_frac: f64,
    /// Write-path replication (EBS persists with redundancy before acking).
    pub replication: ReplicationPolicy,
    /// Model shared-link congestion on the frontend/backend fabrics.
    pub model_congestion: bool,
}

impl Default for StackConfig {
    fn default() -> Self {
        Self {
            seed: 0x57AC_C0DE,
            apply_throttle: true,
            throttle_scale: TRACE_SAMPLE_RATE,
            latency: LatencyModel::default(),
            cs_capacity_bytes: 4.0e12,
            gc_threshold: 0.25,
            overwrite_frac: 0.5,
            replication: ReplicationPolicy::THREE_WAY,
            model_congestion: true,
        }
    }
}

/// Aggregate statistics of one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// IOs routed.
    pub ios: u64,
    /// IOs delayed by the throttle.
    pub throttled: u64,
    /// Reads served from BlockServer prefetch buffers.
    pub prefetch_hits: u64,
    /// GC cycles across all ChunkServers.
    pub gc_runs: u64,
    /// Mean end-to-end latency in microseconds.
    pub mean_latency_us: f64,
}

/// Result of a simulation: the trace dataset plus run statistics.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Per-IO traces with five-stage latencies, time-sorted.
    pub traces: TraceSet,
    /// Aggregate statistics.
    pub stats: SimStats,
}

/// Local per-run metric recorder, allocated only when `EBS_OBS` is on.
/// Records into private histograms during the event loop (no shared lock
/// on the hot path) and merges into the global registry once at the end,
/// so instrumentation can never reorder or perturb the simulation.
struct StackObs {
    queue_wait: ebs_obs::Histogram,
    stage_compute: ebs_obs::Histogram,
    stage_frontend: ebs_obs::Histogram,
    stage_block_server: ebs_obs::Histogram,
    stage_backend: ebs_obs::Histogram,
    stage_chunk_server: ebs_obs::Histogram,
    total: ebs_obs::Histogram,
}

impl StackObs {
    fn new() -> Self {
        Self {
            queue_wait: ebs_obs::Histogram::new(0.0, 10_000.0, 40),
            stage_compute: ebs_obs::Histogram::new(0.0, 20_000.0, 40),
            stage_frontend: ebs_obs::Histogram::new(0.0, 2_000.0, 40),
            stage_block_server: ebs_obs::Histogram::new(0.0, 2_000.0, 40),
            stage_backend: ebs_obs::Histogram::new(0.0, 2_000.0, 40),
            stage_chunk_server: ebs_obs::Histogram::new(0.0, 5_000.0, 40),
            total: ebs_obs::Histogram::new(0.0, 50_000.0, 50),
        }
    }

    fn record_io(&mut self, wait_us: f64, lat: &StageLatency) {
        self.queue_wait.add(wait_us);
        self.stage_compute.add(lat.compute_us);
        self.stage_frontend.add(lat.frontend_us);
        self.stage_block_server.add(lat.block_server_us);
        self.stage_backend.add(lat.backend_us);
        self.stage_chunk_server.add(lat.chunk_server_us);
        self.total.add(lat.total_us());
    }

    /// Publish the run's metrics to the global registry in one merge.
    fn finish(self, stats: &SimStats, engines: &[ChunkServer]) {
        let mut reg = ebs_obs::Registry::new();
        reg.counter_add("stack.sim.ios", stats.ios);
        reg.counter_add("stack.throttle_gate.fires", stats.throttled);
        reg.counter_add("stack.prefetch.hits", stats.prefetch_hits);
        reg.counter_add("stack.prefetch.lookups", stats.ios);
        reg.counter_add("stack.gc.runs", stats.gc_runs);
        reg.merge_hist("stack.queue.wait_us", &self.queue_wait);
        reg.merge_hist("stack.lat.compute_us", &self.stage_compute);
        reg.merge_hist("stack.lat.frontend_us", &self.stage_frontend);
        reg.merge_hist("stack.lat.block_server_us", &self.stage_block_server);
        reg.merge_hist("stack.lat.backend_us", &self.stage_backend);
        reg.merge_hist("stack.lat.chunk_server_us", &self.stage_chunk_server);
        reg.merge_hist("stack.lat.total_us", &self.total);
        // GC pressure multiplier across engines ([1, 2] by construction).
        for engine in engines {
            reg.observe("stack.gc.pressure", 1.0, 2.0, 20, engine.gc_pressure());
        }
        ebs_obs::merge(&reg);
    }
}

/// The simulator itself. One instance per run.
pub struct StackSim<'a> {
    fleet: &'a Fleet,
    config: StackConfig,
    binding: Binding,
    seg_map: SegmentMap,
}

impl<'a> StackSim<'a> {
    /// A simulator over `fleet` with the fleet's initial QP binding and
    /// segment placement.
    pub fn new(fleet: &'a Fleet, config: StackConfig) -> Self {
        Self {
            fleet,
            config,
            binding: Binding::from_fleet(fleet),
            seg_map: SegmentMap::from_fleet(fleet),
        }
    }

    /// Replace the QP→WT binding (for rebinding experiments).
    pub fn with_binding(mut self, binding: Binding) -> Self {
        self.binding = binding;
        self
    }

    /// Replace the segment placement (for balancer experiments).
    pub fn with_segment_map(mut self, seg_map: SegmentMap) -> Self {
        self.seg_map = seg_map;
        self
    }

    /// Route `events` (must be time-sorted) through the stack.
    pub fn run(&mut self, events: &[IoEvent]) -> Result<SimOutput, EbsError> {
        if events.windows(2).any(|w| w[0].t_us > w[1].t_us) {
            return Err(EbsError::invalid_config("events must be time-sorted"));
        }
        let rngf = RngFactory::new(self.config.seed).child("stack");
        let mut rng = rngf.stream("latency");

        let mut queues = WtQueues::new(self.fleet.wt_total);
        let mut gates: Vec<Option<VdGate>> = if self.config.apply_throttle {
            self.fleet
                .vds
                .iter()
                .map(|vd| {
                    let mut spec = vd.spec;
                    spec.tput_cap *= self.config.throttle_scale;
                    spec.iops_cap *= self.config.throttle_scale;
                    Some(VdGate::for_spec(&spec))
                })
                .collect()
        } else {
            vec![None; self.fleet.vds.len()]
        };
        // One prefetcher per BlockServer, one engine per storage node.
        let mut prefetchers: Vec<Prefetcher> = (0..self.fleet.block_servers.len())
            .map(|_| Prefetcher::new())
            .collect();
        let mut engines: Vec<ChunkServer> = (0..self.fleet.storage_nodes.len())
            .map(|_| ChunkServer::new(self.config.cs_capacity_bytes, self.config.gc_threshold))
            .collect();

        let mut fabric = FabricModel::new(
            self.fleet.compute_nodes.len(),
            self.fleet.storage_nodes.len(),
        );
        let mut diting = Diting::new();
        let mut records: Vec<TraceRecord> = Vec::with_capacity(events.len());
        let mut stats = SimStats::default();
        let mut total_latency = 0.0;
        let mut obs = ebs_obs::enabled().then(StackObs::new);

        for ev in events {
            let t = ev.t_us as f64;
            stats.ios += 1;

            // --- hypervisor: throttle, then WT queueing + service.
            let throttle_us = match &mut gates[ev.vd.index()] {
                Some(gate) => {
                    let d = gate.admit(t, ev.size);
                    if d > 0.0 {
                        stats.throttled += 1;
                    }
                    d
                }
                None => 0.0,
            };
            let wt = self.binding.wt_of(ev.qp);
            let service = self.config.latency.compute.sample(&mut rng, ev.size);
            let wait = queues.serve(wt, t + throttle_us, service);
            let compute_us = throttle_us + wait + service;

            // --- frontend network (plus uplink congestion).
            let cn = self.fleet.cn_of_qp(ev.qp);
            let congestion_f = if self.config.model_congestion {
                fabric.frontend_transfer(cn.index(), t, ev.size as f64)
            } else {
                1.0
            };
            let frontend_us = self.config.latency.frontend.sample(&mut rng, ev.size) * congestion_f;

            // --- BlockServer: translate, prefetch, forward.
            let seg = self.fleet.segment_at(ev.vd, ev.offset).ok_or_else(|| {
                EbsError::unknown_entity(format!("offset {} in {}", ev.offset, ev.vd))
            })?;
            let bs = self.seg_map.home_of(seg);
            let prefetched = prefetchers[bs.index()].observe(seg, ev);
            if prefetched {
                stats.prefetch_hits += 1;
            }
            let block_server_us = self.config.latency.block_server.sample(&mut rng, ev.size);

            // --- backend network + ChunkServer (skipped on prefetch hit).
            let sn = self.fleet.block_servers[bs].sn;
            let engine = &mut engines[sn.index()];
            let (backend_us, chunk_server_us) = if prefetched {
                (0.0, 0.0)
            } else {
                let congestion_b = if self.config.model_congestion {
                    fabric.backend_transfer(sn.index(), t, ev.size as f64)
                } else {
                    1.0
                };
                let backend = self.config.latency.backend.sample(&mut rng, ev.size) * congestion_b;
                let cs = match ev.op {
                    Op::Write => {
                        // Replicated append: slowest required ack, scaled
                        // by the engine's GC pressure.
                        self.config.replication.write_latency_us(
                            &mut rng,
                            &self.config.latency.cs_write,
                            ev.size,
                        ) * engine.gc_pressure()
                    }
                    Op::Read => self
                        .config
                        .latency
                        .chunk_server_us(&mut rng, ev.op, ev.size, false),
                };
                (backend, cs)
            };
            if ev.op == Op::Write && engine.append(ev.size as f64, self.config.overwrite_frac) {
                stats.gc_runs += 1;
            }

            let lat = StageLatency {
                compute_us,
                frontend_us,
                block_server_us,
                backend_us,
                chunk_server_us,
            };
            total_latency += lat.total_us();
            if let Some(o) = obs.as_mut() {
                o.record_io(wait, &lat);
            }
            records.push(diting.record(self.fleet, ev, wt, bs, lat));
        }
        if let Some(o) = obs {
            o.finish(&stats, &engines);
        }
        stats.mean_latency_us = if stats.ios > 0 {
            total_latency / stats.ios as f64
        } else {
            0.0
        };
        Ok(SimOutput {
            traces: TraceSet::from_records(records),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_workload::{generate, WorkloadConfig};

    fn simulate(seed: u64) -> (SimOutput, usize) {
        let ds = generate(&WorkloadConfig::quick(seed)).unwrap();
        let mut sim = StackSim::new(&ds.fleet, StackConfig::default());
        let out = sim.run(&ds.events).unwrap();
        (out, ds.events.len())
    }

    #[test]
    fn every_event_becomes_a_trace() {
        let (out, n) = simulate(31);
        assert_eq!(out.traces.len(), n);
        assert_eq!(out.stats.ios as usize, n);
    }

    #[test]
    fn latencies_are_positive_and_structured() {
        let (out, _) = simulate(32);
        for r in out.traces.records() {
            assert!(r.lat.total_us() > 0.0);
            assert!(r.lat.compute_us > 0.0);
            // CN-cache latency ≤ BS-cache latency ≤ total.
            assert!(r.lat.cn_cache_us() <= r.lat.bs_cache_us() + 1e-9);
            assert!(r.lat.bs_cache_us() <= r.lat.total_us() + 1e-9);
        }
        assert!(out.stats.mean_latency_us > 0.0);
    }

    #[test]
    fn writes_slower_than_reads_on_average() {
        // Compare the raw device path: disable throttling so huge read
        // bursts don't pick up multi-second throttle queueing.
        let ds = generate(&WorkloadConfig::quick(33)).unwrap();
        let cfg = StackConfig {
            apply_throttle: false,
            ..StackConfig::default()
        };
        let mut sim = StackSim::new(&ds.fleet, cfg);
        let out = sim.run(&ds.events).unwrap();
        let (mut rsum, mut rcnt, mut wsum, mut wcnt) = (0.0, 0u32, 0.0, 0u32);
        for r in out.traces.records() {
            if r.op.is_read() {
                rsum += r.lat.total_us();
                rcnt += 1;
            } else {
                wsum += r.lat.total_us();
                wcnt += 1;
            }
        }
        assert!(rcnt > 0 && wcnt > 0);
        assert!(wsum / wcnt as f64 > rsum / rcnt as f64);
    }

    #[test]
    fn simulation_is_deterministic() {
        let (a, _) = simulate(34);
        let (b, _) = simulate(34);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.traces.records()[0], b.traces.records()[0]);
    }

    #[test]
    fn unsorted_events_are_rejected() {
        let ds = generate(&WorkloadConfig::quick(35)).unwrap();
        let mut events = ds.events;
        let last = events.len() - 1;
        assert!(last > 0, "need at least two events");
        events.swap(0, last);
        let mut sim = StackSim::new(&ds.fleet, StackConfig::default());
        assert!(sim.run(&events).is_err());
    }

    #[test]
    fn disabling_throttle_removes_throttle_delays() {
        let ds = generate(&WorkloadConfig::quick(36)).unwrap();
        let cfg = StackConfig {
            apply_throttle: false,
            ..StackConfig::default()
        };
        let mut sim = StackSim::new(&ds.fleet, cfg);
        let out = sim.run(&ds.events).unwrap();
        assert_eq!(out.stats.throttled, 0);
    }

    #[test]
    fn replication_lengthens_write_latency() {
        let ds = generate(&WorkloadConfig::quick(38)).unwrap();
        let mean_write = |policy| {
            let cfg = StackConfig {
                apply_throttle: false,
                replication: policy,
                ..StackConfig::default()
            };
            let mut sim = StackSim::new(&ds.fleet, cfg);
            let out = sim.run(&ds.events).unwrap();
            let (sum, n) = out
                .traces
                .records()
                .iter()
                .filter(|r| r.op.is_write())
                .fold((0.0, 0u32), |(s, n), r| (s + r.lat.chunk_server_us, n + 1));
            sum / n as f64
        };
        let single = mean_write(crate::replication::ReplicationPolicy::NONE);
        let triple = mean_write(crate::replication::ReplicationPolicy::THREE_WAY);
        assert!(
            triple > single * 1.1,
            "3-way {triple:.0} vs 1-way {single:.0}"
        );
    }

    #[test]
    fn trace_entities_match_fleet_topology() {
        let (out, _) = simulate(37);
        let ds = generate(&WorkloadConfig::quick(37)).unwrap();
        for r in out.traces.records().iter().take(500) {
            assert_eq!(ds.fleet.vds[r.vd].vm, r.vm);
            assert_eq!(ds.fleet.vms[r.vm].cn, r.cn);
            assert_eq!(ds.fleet.cn_of_wt(r.wt), r.cn);
            assert_eq!(ds.fleet.block_servers[r.bs].sn, r.sn);
        }
    }
}
