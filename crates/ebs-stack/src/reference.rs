//! The preserved event-at-a-time simulator (differential oracle).
//!
//! [`ReferenceSim::run`] is the original `StackSim::run` per-event loop,
//! kept verbatim when the production simulator moved to the staged
//! columnar pipeline in [`crate::sim`]. It exists so differential tests
//! (and `bench --mode sim`) can pin the staged output byte-identical to
//! the straightforward formulation — the same pattern as the PR 3
//! reference kernels. Any behavioural change must land in both or the
//! differential test fails.

use crate::block_server::Prefetcher;
use crate::chunk_server::ChunkServer;
use crate::diting::Diting;
use crate::hypervisor::{Binding, WtQueues};
use crate::network::FabricModel;
use crate::segment::SegmentMap;
use crate::sim::{SimOutput, SimStats, StackConfig, StackObs};
use crate::throttle_gate::VdGate;
use ebs_core::error::EbsError;
use ebs_core::io::{IoEvent, Op};
use ebs_core::rng::RngFactory;
use ebs_core::topology::Fleet;
use ebs_core::trace::{StageLatency, TraceRecord, TraceSet};

/// The event-at-a-time simulator. One instance per run; identical
/// configuration surface to [`crate::sim::StackSim`].
pub struct ReferenceSim<'a> {
    fleet: &'a Fleet,
    config: StackConfig,
    binding: Binding,
    seg_map: SegmentMap,
}

impl<'a> ReferenceSim<'a> {
    /// A simulator over `fleet` with the fleet's initial QP binding and
    /// segment placement.
    pub fn new(fleet: &'a Fleet, config: StackConfig) -> Self {
        Self {
            fleet,
            config,
            binding: Binding::from_fleet(fleet),
            seg_map: SegmentMap::from_fleet(fleet),
        }
    }

    /// Replace the QP→WT binding (for rebinding experiments).
    pub fn with_binding(mut self, binding: Binding) -> Self {
        self.binding = binding;
        self
    }

    /// Replace the segment placement (for balancer experiments).
    pub fn with_segment_map(mut self, seg_map: SegmentMap) -> Self {
        self.seg_map = seg_map;
        self
    }

    /// Route `events` (must be time-sorted) through the stack, one event
    /// at a time.
    pub fn run(&mut self, events: &[IoEvent]) -> Result<SimOutput, EbsError> {
        if events.windows(2).any(|w| w[0].t_us > w[1].t_us) {
            return Err(EbsError::invalid_config("events must be time-sorted"));
        }
        let rngf = RngFactory::new(self.config.seed).child("stack");
        let mut rng = rngf.stream("latency");

        let mut queues = WtQueues::new(self.fleet.wt_total);
        let mut gates: Vec<Option<VdGate>> = if self.config.apply_throttle {
            self.fleet
                .vds
                .iter()
                .map(|vd| {
                    let mut spec = vd.spec;
                    spec.tput_cap *= self.config.throttle_scale;
                    spec.iops_cap *= self.config.throttle_scale;
                    Some(VdGate::for_spec(&spec))
                })
                .collect()
        } else {
            vec![None; self.fleet.vds.len()]
        };
        // One prefetcher per BlockServer, one engine per storage node.
        let mut prefetchers: Vec<Prefetcher> = (0..self.fleet.block_servers.len())
            .map(|_| Prefetcher::new())
            .collect();
        let mut engines: Vec<ChunkServer> = (0..self.fleet.storage_nodes.len())
            .map(|_| ChunkServer::new(self.config.cs_capacity_bytes, self.config.gc_threshold))
            .collect();

        let mut fabric = FabricModel::new(
            self.fleet.compute_nodes.len(),
            self.fleet.storage_nodes.len(),
        );
        let mut diting = Diting::new();
        let mut records: Vec<TraceRecord> = Vec::with_capacity(events.len());
        let mut stats = SimStats::default();
        let mut total_latency = 0.0;
        let mut obs = ebs_obs::enabled().then(StackObs::new);

        for ev in events {
            let t = ev.t_us as f64;
            stats.ios += 1;

            // --- hypervisor: throttle, then WT queueing + service.
            let throttle_us = match &mut gates[ev.vd.index()] {
                Some(gate) => {
                    let d = gate.admit(t, ev.size);
                    if d > 0.0 {
                        stats.throttled += 1;
                    }
                    d
                }
                None => 0.0,
            };
            let wt = self.binding.wt_of(ev.qp);
            let service = self.config.latency.compute.sample(&mut rng, ev.size);
            let wait = queues.serve(wt, t + throttle_us, service);
            let compute_us = throttle_us + wait + service;

            // --- frontend network (plus uplink congestion).
            let cn = self.fleet.cn_of_qp(ev.qp);
            let congestion_f = if self.config.model_congestion {
                fabric.frontend_transfer(cn.index(), t, ev.size as f64)
            } else {
                1.0
            };
            let frontend_us = self.config.latency.frontend.sample(&mut rng, ev.size) * congestion_f;

            // --- BlockServer: translate, prefetch, forward.
            let seg = self.fleet.segment_at(ev.vd, ev.offset).ok_or_else(|| {
                EbsError::unknown_entity(format!("offset {} in {}", ev.offset, ev.vd))
            })?;
            let bs = self.seg_map.home_of(seg);
            let prefetched = prefetchers[bs.index()].observe(seg, ev);
            if prefetched {
                stats.prefetch_hits += 1;
            }
            let block_server_us = self.config.latency.block_server.sample(&mut rng, ev.size);

            // --- backend network + ChunkServer (skipped on prefetch hit).
            let sn = self.fleet.block_servers[bs].sn;
            let engine = &mut engines[sn.index()];
            let (backend_us, chunk_server_us) = if prefetched {
                (0.0, 0.0)
            } else {
                let congestion_b = if self.config.model_congestion {
                    fabric.backend_transfer(sn.index(), t, ev.size as f64)
                } else {
                    1.0
                };
                let backend = self.config.latency.backend.sample(&mut rng, ev.size) * congestion_b;
                let cs = match ev.op {
                    Op::Write => {
                        // Replicated append: slowest required ack, scaled
                        // by the engine's GC pressure.
                        self.config.replication.write_latency_us(
                            &mut rng,
                            &self.config.latency.cs_write,
                            ev.size,
                        ) * engine.gc_pressure()
                    }
                    Op::Read => self
                        .config
                        .latency
                        .chunk_server_us(&mut rng, ev.op, ev.size, false),
                };
                (backend, cs)
            };
            if ev.op == Op::Write && engine.append(ev.size as f64, self.config.overwrite_frac) {
                stats.gc_runs += 1;
            }

            let lat = StageLatency {
                compute_us,
                frontend_us,
                block_server_us,
                backend_us,
                chunk_server_us,
            };
            total_latency += lat.total_us();
            if let Some(o) = obs.as_mut() {
                o.record_io(wait, &lat);
            }
            records.push(diting.record(self.fleet, ev, wt, bs, lat));
        }
        if let Some(o) = obs {
            o.finish(&stats, &engines);
        }
        stats.mean_latency_us = if stats.ios > 0 {
            total_latency / stats.ios as f64
        } else {
            0.0
        };
        Ok(SimOutput {
            traces: TraceSet::from_records(records),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_workload::{generate, WorkloadConfig};

    #[test]
    fn reference_is_deterministic() {
        let ds = generate(&WorkloadConfig::quick(34)).unwrap();
        let run = || {
            ReferenceSim::new(&ds.fleet, StackConfig::default())
                .run(&ds.events)
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.traces.records(), b.traces.records());
    }

    #[test]
    fn reference_rejects_unsorted_events() {
        let ds = generate(&WorkloadConfig::quick(35)).unwrap();
        let mut events = ds.events;
        let last = events.len() - 1;
        events.swap(0, last);
        assert!(ReferenceSim::new(&ds.fleet, StackConfig::default())
            .run(&events)
            .is_err());
    }
}
