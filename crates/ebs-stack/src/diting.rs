//! DiTing: the distributed tracer (§2.3).
//!
//! DiTing assembles per-IO trace records — block-layer info, the stack
//! entities the IO traversed, and the five-stage latency breakdown — and
//! can export them as CSV for offline analysis. In production DiTing also
//! performs the 1/3200 sampling; in this reproduction the workload
//! generator already emits the sampled stream, so the tracer's job is
//! record assembly and ids.

use ebs_core::ids::{BsId, TraceId, WtId};
use ebs_core::io::IoEvent;
use ebs_core::topology::Fleet;
use ebs_core::trace::{StageLatency, TraceRecord};
use std::io::Write;

/// Trace-record assembler with monotonically increasing trace ids.
#[derive(Clone, Debug, Default)]
pub struct Diting {
    next_id: u64,
}

impl Diting {
    /// Fresh tracer starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assemble the trace record for a routed IO.
    ///
    /// # Panics
    /// Panics if the event's offset is outside its VD (the workload
    /// generator guarantees it is not).
    pub fn record(
        &mut self,
        fleet: &Fleet,
        ev: &IoEvent,
        wt: WtId,
        bs: BsId,
        lat: StageLatency,
    ) -> TraceRecord {
        let seg = fleet
            .segment_at(ev.vd, ev.offset)
            .expect("IO offset outside VD capacity");
        self.record_routed(fleet, ev, wt, seg, bs, fleet.block_servers[bs].sn, lat)
    }

    /// Assemble the trace record for an IO whose routing (segment,
    /// BlockServer, storage node) was already resolved — the staged
    /// simulator's path, which carries a precomputed
    /// [`crate::route::RoutePlan`] instead of re-deriving `segment_at`
    /// per record. Produces exactly what [`Self::record`] would.
    #[allow(clippy::too_many_arguments)]
    pub fn record_routed(
        &mut self,
        fleet: &Fleet,
        ev: &IoEvent,
        wt: WtId,
        seg: ebs_core::ids::SegId,
        bs: BsId,
        sn: ebs_core::ids::SnId,
        lat: StageLatency,
    ) -> TraceRecord {
        let id = TraceId(self.next_id);
        self.next_id += 1;
        let vd = &fleet.vds[ev.vd];
        TraceRecord {
            id,
            t_us: ev.t_us,
            op: ev.op,
            size: ev.size,
            offset: ev.offset,
            qp: ev.qp,
            vd: ev.vd,
            vm: vd.vm,
            cn: fleet.vms[vd.vm].cn,
            wt,
            seg,
            bs,
            sn,
            lat,
        }
    }

    /// Number of records issued so far.
    pub fn issued(&self) -> u64 {
        self.next_id
    }
}

/// Write trace records as CSV (header + one row per record).
pub fn write_csv<W: Write>(records: &[TraceRecord], mut w: W) -> std::io::Result<()> {
    writeln!(
        w,
        "trace_id,t_us,op,size,offset,qp,vd,vm,cn,wt,seg,bs,sn,\
         compute_us,frontend_us,block_server_us,backend_us,chunk_server_us"
    )?;
    for r in records {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{:.2},{:.2},{:.2},{:.2},{:.2}",
            r.id,
            r.t_us,
            r.op.letter(),
            r.size,
            r.offset,
            r.qp.0,
            r.vd.0,
            r.vm.0,
            r.cn.0,
            r.wt.0,
            r.seg.0,
            r.bs.0,
            r.sn.0,
            r.lat.compute_us,
            r.lat.frontend_us,
            r.lat.block_server_us,
            r.lat.backend_us,
            r.lat.chunk_server_us,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebs_core::apps::AppClass;
    use ebs_core::ids::QpId;
    use ebs_core::io::Op;
    use ebs_core::spec::VdTier;
    use ebs_core::topology::FleetBuilder;
    use ebs_core::units::GIB;

    fn fleet() -> Fleet {
        let mut b = FleetBuilder::new();
        let dc = b.add_dc("DC-1");
        let sn = b.add_sn(dc);
        b.add_bs(sn);
        let u = b.add_user();
        let cn = b.add_cn(dc, 4, false);
        let vm = b.add_vm(cn, u, AppClass::WebApp);
        b.add_vd(vm, VdTier::Standard.spec(64 * GIB));
        b.finish().unwrap()
    }

    #[test]
    fn record_fills_stack_entities() {
        let f = fleet();
        let mut d = Diting::new();
        let ev = IoEvent {
            t_us: 123,
            vd: ebs_core::ids::VdId(0),
            qp: QpId(0),
            op: Op::Write,
            size: 4096,
            offset: 40 * GIB,
        };
        let r = d.record(&f, &ev, WtId(2), BsId(0), StageLatency::default());
        assert_eq!(r.id, TraceId(0));
        assert_eq!(r.seg.0, 1); // 40 GiB falls in segment 1
        assert_eq!(r.sn.0, 0);
        assert_eq!(r.cn.0, 0);
        assert_eq!(d.issued(), 1);
    }

    #[test]
    fn ids_are_monotone() {
        let f = fleet();
        let mut d = Diting::new();
        let ev = IoEvent {
            t_us: 0,
            vd: ebs_core::ids::VdId(0),
            qp: QpId(0),
            op: Op::Read,
            size: 512,
            offset: 0,
        };
        let a = d.record(&f, &ev, WtId(0), BsId(0), StageLatency::default());
        let b = d.record(&f, &ev, WtId(0), BsId(0), StageLatency::default());
        assert!(b.id > a.id);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let f = fleet();
        let mut d = Diting::new();
        let ev = IoEvent {
            t_us: 55,
            vd: ebs_core::ids::VdId(0),
            qp: QpId(0),
            op: Op::Read,
            size: 8192,
            offset: GIB,
        };
        let r = d.record(&f, &ev, WtId(1), BsId(0), StageLatency::default());
        let mut buf = Vec::new();
        write_csv(&[r], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("trace_id,"));
        assert_eq!(lines[1].split(',').count(), 18);
        assert!(lines[1].contains(",R,"));
    }
}
