//! # ebs — facade crate for the `ebs-skew` workspace
//!
//! A production-quality Rust reproduction of *"Hey Hey, My My, Skewness Is
//! Here to Stay: Challenges and Opportunities in Cloud Block Store
//! Traffic"* (EuroSys '25). This crate simply re-exports the workspace
//! members under short names so examples and downstream users can depend
//! on one crate:
//!
//! ```
//! use ebs::workload::{generate, WorkloadConfig};
//! use ebs::stack::sim::{StackConfig, StackSim};
//!
//! let ds = generate(&WorkloadConfig::quick(7)).unwrap();
//! let mut sim = StackSim::new(&ds.fleet, StackConfig::default());
//! let out = sim.run(&ds.events).unwrap();
//! assert_eq!(out.traces.len(), ds.events.len());
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and substitution argument, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![forbid(unsafe_code)]

pub use ebs_analysis as analysis;
pub use ebs_balance as balance;
pub use ebs_cache as cache;
pub use ebs_core as core;
pub use ebs_experiments as experiments;
pub use ebs_obs as obs;
pub use ebs_predict as predict;
pub use ebs_serve as serve;
pub use ebs_stack as stack;
pub use ebs_store as store;
pub use ebs_throttle as throttle;
pub use ebs_workload as workload;
