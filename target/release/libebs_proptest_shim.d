/root/repo/target/release/libebs_proptest_shim.rlib: /root/repo/crates/proptest-shim/src/lib.rs
