/root/repo/target/release/deps/ebs_balance-996bb7820125644b.d: crates/ebs-balance/src/lib.rs crates/ebs-balance/src/bs_balancer.rs crates/ebs-balance/src/dispatch.rs crates/ebs-balance/src/importer.rs crates/ebs-balance/src/migration.rs crates/ebs-balance/src/read_write.rs crates/ebs-balance/src/wt_rebind.rs

/root/repo/target/release/deps/libebs_balance-996bb7820125644b.rlib: crates/ebs-balance/src/lib.rs crates/ebs-balance/src/bs_balancer.rs crates/ebs-balance/src/dispatch.rs crates/ebs-balance/src/importer.rs crates/ebs-balance/src/migration.rs crates/ebs-balance/src/read_write.rs crates/ebs-balance/src/wt_rebind.rs

/root/repo/target/release/deps/libebs_balance-996bb7820125644b.rmeta: crates/ebs-balance/src/lib.rs crates/ebs-balance/src/bs_balancer.rs crates/ebs-balance/src/dispatch.rs crates/ebs-balance/src/importer.rs crates/ebs-balance/src/migration.rs crates/ebs-balance/src/read_write.rs crates/ebs-balance/src/wt_rebind.rs

crates/ebs-balance/src/lib.rs:
crates/ebs-balance/src/bs_balancer.rs:
crates/ebs-balance/src/dispatch.rs:
crates/ebs-balance/src/importer.rs:
crates/ebs-balance/src/migration.rs:
crates/ebs-balance/src/read_write.rs:
crates/ebs-balance/src/wt_rebind.rs:
