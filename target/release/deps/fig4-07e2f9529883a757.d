/root/repo/target/release/deps/fig4-07e2f9529883a757.d: crates/ebs-experiments/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-07e2f9529883a757: crates/ebs-experiments/src/bin/fig4.rs

crates/ebs-experiments/src/bin/fig4.rs:
