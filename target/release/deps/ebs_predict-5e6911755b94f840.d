/root/repo/target/release/deps/ebs_predict-5e6911755b94f840.d: crates/ebs-predict/src/lib.rs crates/ebs-predict/src/arima.rs crates/ebs-predict/src/attention.rs crates/ebs-predict/src/eval.rs crates/ebs-predict/src/gbdt.rs crates/ebs-predict/src/linear.rs crates/ebs-predict/src/matrix.rs

/root/repo/target/release/deps/libebs_predict-5e6911755b94f840.rlib: crates/ebs-predict/src/lib.rs crates/ebs-predict/src/arima.rs crates/ebs-predict/src/attention.rs crates/ebs-predict/src/eval.rs crates/ebs-predict/src/gbdt.rs crates/ebs-predict/src/linear.rs crates/ebs-predict/src/matrix.rs

/root/repo/target/release/deps/libebs_predict-5e6911755b94f840.rmeta: crates/ebs-predict/src/lib.rs crates/ebs-predict/src/arima.rs crates/ebs-predict/src/attention.rs crates/ebs-predict/src/eval.rs crates/ebs-predict/src/gbdt.rs crates/ebs-predict/src/linear.rs crates/ebs-predict/src/matrix.rs

crates/ebs-predict/src/lib.rs:
crates/ebs-predict/src/arima.rs:
crates/ebs-predict/src/attention.rs:
crates/ebs-predict/src/eval.rs:
crates/ebs-predict/src/gbdt.rs:
crates/ebs-predict/src/linear.rs:
crates/ebs-predict/src/matrix.rs:
