/root/repo/target/release/deps/ebs_bench-1cf24e7f84cfaa92.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libebs_bench-1cf24e7f84cfaa92.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libebs_bench-1cf24e7f84cfaa92.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
