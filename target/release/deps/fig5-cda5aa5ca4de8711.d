/root/repo/target/release/deps/fig5-cda5aa5ca4de8711.d: crates/ebs-experiments/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-cda5aa5ca4de8711: crates/ebs-experiments/src/bin/fig5.rs

crates/ebs-experiments/src/bin/fig5.rs:
