/root/repo/target/release/deps/ebs_proptest_shim-13f0256bb88755cf.d: crates/proptest-shim/src/lib.rs

/root/repo/target/release/deps/libebs_proptest_shim-13f0256bb88755cf.rlib: crates/proptest-shim/src/lib.rs

/root/repo/target/release/deps/libebs_proptest_shim-13f0256bb88755cf.rmeta: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:
