/root/repo/target/release/deps/all-f3d0a28c8d8aaf48.d: crates/ebs-experiments/src/bin/all.rs

/root/repo/target/release/deps/all-f3d0a28c8d8aaf48: crates/ebs-experiments/src/bin/all.rs

crates/ebs-experiments/src/bin/all.rs:
