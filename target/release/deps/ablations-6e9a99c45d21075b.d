/root/repo/target/release/deps/ablations-6e9a99c45d21075b.d: crates/ebs-experiments/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-6e9a99c45d21075b: crates/ebs-experiments/src/bin/ablations.rs

crates/ebs-experiments/src/bin/ablations.rs:
