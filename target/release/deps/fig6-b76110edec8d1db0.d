/root/repo/target/release/deps/fig6-b76110edec8d1db0.d: crates/ebs-experiments/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-b76110edec8d1db0: crates/ebs-experiments/src/bin/fig6.rs

crates/ebs-experiments/src/bin/fig6.rs:
