/root/repo/target/release/deps/failure_injection-e0822c30bda9879c.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-e0822c30bda9879c: tests/failure_injection.rs

tests/failure_injection.rs:
