/root/repo/target/release/deps/fig2-3f281a422cf12ad2.d: crates/ebs-experiments/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-3f281a422cf12ad2: crates/ebs-experiments/src/bin/fig2.rs

crates/ebs-experiments/src/bin/fig2.rs:
