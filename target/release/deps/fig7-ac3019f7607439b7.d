/root/repo/target/release/deps/fig7-ac3019f7607439b7.d: crates/ebs-experiments/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-ac3019f7607439b7: crates/ebs-experiments/src/bin/fig7.rs

crates/ebs-experiments/src/bin/fig7.rs:
