/root/repo/target/release/deps/parallel-2df55d086ba1d3cd.d: crates/bench/benches/parallel.rs

/root/repo/target/release/deps/parallel-2df55d086ba1d3cd: crates/bench/benches/parallel.rs

crates/bench/benches/parallel.rs:
