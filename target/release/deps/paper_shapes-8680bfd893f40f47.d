/root/repo/target/release/deps/paper_shapes-8680bfd893f40f47.d: tests/paper_shapes.rs

/root/repo/target/release/deps/paper_shapes-8680bfd893f40f47: tests/paper_shapes.rs

tests/paper_shapes.rs:
