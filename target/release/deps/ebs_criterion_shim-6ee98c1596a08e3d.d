/root/repo/target/release/deps/ebs_criterion_shim-6ee98c1596a08e3d.d: crates/criterion-shim/src/lib.rs

/root/repo/target/release/deps/libebs_criterion_shim-6ee98c1596a08e3d.rlib: crates/criterion-shim/src/lib.rs

/root/repo/target/release/deps/libebs_criterion_shim-6ee98c1596a08e3d.rmeta: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
