/root/repo/target/release/deps/ebs_workload-560addb1084bb7b0.d: crates/ebs-workload/src/lib.rs crates/ebs-workload/src/calibration.rs crates/ebs-workload/src/config.rs crates/ebs-workload/src/dataset.rs crates/ebs-workload/src/dist/mod.rs crates/ebs-workload/src/dist/gaussian.rs crates/ebs-workload/src/dist/onoff.rs crates/ebs-workload/src/dist/pareto.rs crates/ebs-workload/src/dist/poisson.rs crates/ebs-workload/src/dist/zipf.rs crates/ebs-workload/src/export.rs crates/ebs-workload/src/fleet.rs crates/ebs-workload/src/generator.rs crates/ebs-workload/src/lba.rs crates/ebs-workload/src/profile.rs crates/ebs-workload/src/sampler.rs crates/ebs-workload/src/spatial.rs

/root/repo/target/release/deps/libebs_workload-560addb1084bb7b0.rlib: crates/ebs-workload/src/lib.rs crates/ebs-workload/src/calibration.rs crates/ebs-workload/src/config.rs crates/ebs-workload/src/dataset.rs crates/ebs-workload/src/dist/mod.rs crates/ebs-workload/src/dist/gaussian.rs crates/ebs-workload/src/dist/onoff.rs crates/ebs-workload/src/dist/pareto.rs crates/ebs-workload/src/dist/poisson.rs crates/ebs-workload/src/dist/zipf.rs crates/ebs-workload/src/export.rs crates/ebs-workload/src/fleet.rs crates/ebs-workload/src/generator.rs crates/ebs-workload/src/lba.rs crates/ebs-workload/src/profile.rs crates/ebs-workload/src/sampler.rs crates/ebs-workload/src/spatial.rs

/root/repo/target/release/deps/libebs_workload-560addb1084bb7b0.rmeta: crates/ebs-workload/src/lib.rs crates/ebs-workload/src/calibration.rs crates/ebs-workload/src/config.rs crates/ebs-workload/src/dataset.rs crates/ebs-workload/src/dist/mod.rs crates/ebs-workload/src/dist/gaussian.rs crates/ebs-workload/src/dist/onoff.rs crates/ebs-workload/src/dist/pareto.rs crates/ebs-workload/src/dist/poisson.rs crates/ebs-workload/src/dist/zipf.rs crates/ebs-workload/src/export.rs crates/ebs-workload/src/fleet.rs crates/ebs-workload/src/generator.rs crates/ebs-workload/src/lba.rs crates/ebs-workload/src/profile.rs crates/ebs-workload/src/sampler.rs crates/ebs-workload/src/spatial.rs

crates/ebs-workload/src/lib.rs:
crates/ebs-workload/src/calibration.rs:
crates/ebs-workload/src/config.rs:
crates/ebs-workload/src/dataset.rs:
crates/ebs-workload/src/dist/mod.rs:
crates/ebs-workload/src/dist/gaussian.rs:
crates/ebs-workload/src/dist/onoff.rs:
crates/ebs-workload/src/dist/pareto.rs:
crates/ebs-workload/src/dist/poisson.rs:
crates/ebs-workload/src/dist/zipf.rs:
crates/ebs-workload/src/export.rs:
crates/ebs-workload/src/fleet.rs:
crates/ebs-workload/src/generator.rs:
crates/ebs-workload/src/lba.rs:
crates/ebs-workload/src/profile.rs:
crates/ebs-workload/src/sampler.rs:
crates/ebs-workload/src/spatial.rs:
