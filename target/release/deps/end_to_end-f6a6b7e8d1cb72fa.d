/root/repo/target/release/deps/end_to_end-f6a6b7e8d1cb72fa.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-f6a6b7e8d1cb72fa: tests/end_to_end.rs

tests/end_to_end.rs:
