/root/repo/target/release/deps/properties-9365fba6d562f72f.d: tests/properties.rs

/root/repo/target/release/deps/properties-9365fba6d562f72f: tests/properties.rs

tests/properties.rs:
