/root/repo/target/release/deps/ebs_throttle-163b8d7ce0fcd561.d: crates/ebs-throttle/src/lib.rs crates/ebs-throttle/src/lending.rs crates/ebs-throttle/src/predictive.rs crates/ebs-throttle/src/rar.rs crates/ebs-throttle/src/reduction.rs crates/ebs-throttle/src/scenario.rs

/root/repo/target/release/deps/libebs_throttle-163b8d7ce0fcd561.rlib: crates/ebs-throttle/src/lib.rs crates/ebs-throttle/src/lending.rs crates/ebs-throttle/src/predictive.rs crates/ebs-throttle/src/rar.rs crates/ebs-throttle/src/reduction.rs crates/ebs-throttle/src/scenario.rs

/root/repo/target/release/deps/libebs_throttle-163b8d7ce0fcd561.rmeta: crates/ebs-throttle/src/lib.rs crates/ebs-throttle/src/lending.rs crates/ebs-throttle/src/predictive.rs crates/ebs-throttle/src/rar.rs crates/ebs-throttle/src/reduction.rs crates/ebs-throttle/src/scenario.rs

crates/ebs-throttle/src/lib.rs:
crates/ebs-throttle/src/lending.rs:
crates/ebs-throttle/src/predictive.rs:
crates/ebs-throttle/src/rar.rs:
crates/ebs-throttle/src/reduction.rs:
crates/ebs-throttle/src/scenario.rs:
