/root/repo/target/release/deps/table2-1452f490ad715c5b.d: crates/ebs-experiments/src/bin/table2.rs

/root/repo/target/release/deps/table2-1452f490ad715c5b: crates/ebs-experiments/src/bin/table2.rs

crates/ebs-experiments/src/bin/table2.rs:
