/root/repo/target/release/deps/determinism-672833f239f32272.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-672833f239f32272: tests/determinism.rs

tests/determinism.rs:
