/root/repo/target/release/deps/fig3-bb55002a607943d3.d: crates/ebs-experiments/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-bb55002a607943d3: crates/ebs-experiments/src/bin/fig3.rs

crates/ebs-experiments/src/bin/fig3.rs:
