/root/repo/target/release/deps/experiments_smoke-a107295e0e65e955.d: tests/experiments_smoke.rs

/root/repo/target/release/deps/experiments_smoke-a107295e0e65e955: tests/experiments_smoke.rs

tests/experiments_smoke.rs:
