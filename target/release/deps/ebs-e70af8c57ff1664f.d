/root/repo/target/release/deps/ebs-e70af8c57ff1664f.d: src/lib.rs

/root/repo/target/release/deps/ebs-e70af8c57ff1664f: src/lib.rs

src/lib.rs:
