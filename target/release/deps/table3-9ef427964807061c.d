/root/repo/target/release/deps/table3-9ef427964807061c.d: crates/ebs-experiments/src/bin/table3.rs

/root/repo/target/release/deps/table3-9ef427964807061c: crates/ebs-experiments/src/bin/table3.rs

crates/ebs-experiments/src/bin/table3.rs:
