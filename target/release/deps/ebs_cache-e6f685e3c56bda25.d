/root/repo/target/release/deps/ebs_cache-e6f685e3c56bda25.d: crates/ebs-cache/src/lib.rs crates/ebs-cache/src/fifo.rs crates/ebs-cache/src/frozen.rs crates/ebs-cache/src/hottest_block.rs crates/ebs-cache/src/hybrid.rs crates/ebs-cache/src/lfu.rs crates/ebs-cache/src/location.rs crates/ebs-cache/src/lru.rs crates/ebs-cache/src/policy.rs crates/ebs-cache/src/simulate.rs crates/ebs-cache/src/utilization.rs

/root/repo/target/release/deps/libebs_cache-e6f685e3c56bda25.rlib: crates/ebs-cache/src/lib.rs crates/ebs-cache/src/fifo.rs crates/ebs-cache/src/frozen.rs crates/ebs-cache/src/hottest_block.rs crates/ebs-cache/src/hybrid.rs crates/ebs-cache/src/lfu.rs crates/ebs-cache/src/location.rs crates/ebs-cache/src/lru.rs crates/ebs-cache/src/policy.rs crates/ebs-cache/src/simulate.rs crates/ebs-cache/src/utilization.rs

/root/repo/target/release/deps/libebs_cache-e6f685e3c56bda25.rmeta: crates/ebs-cache/src/lib.rs crates/ebs-cache/src/fifo.rs crates/ebs-cache/src/frozen.rs crates/ebs-cache/src/hottest_block.rs crates/ebs-cache/src/hybrid.rs crates/ebs-cache/src/lfu.rs crates/ebs-cache/src/location.rs crates/ebs-cache/src/lru.rs crates/ebs-cache/src/policy.rs crates/ebs-cache/src/simulate.rs crates/ebs-cache/src/utilization.rs

crates/ebs-cache/src/lib.rs:
crates/ebs-cache/src/fifo.rs:
crates/ebs-cache/src/frozen.rs:
crates/ebs-cache/src/hottest_block.rs:
crates/ebs-cache/src/hybrid.rs:
crates/ebs-cache/src/lfu.rs:
crates/ebs-cache/src/location.rs:
crates/ebs-cache/src/lru.rs:
crates/ebs-cache/src/policy.rs:
crates/ebs-cache/src/simulate.rs:
crates/ebs-cache/src/utilization.rs:
