/root/repo/target/release/deps/extensions-1bce04099f80e372.d: crates/ebs-experiments/src/bin/extensions.rs

/root/repo/target/release/deps/extensions-1bce04099f80e372: crates/ebs-experiments/src/bin/extensions.rs

crates/ebs-experiments/src/bin/extensions.rs:
