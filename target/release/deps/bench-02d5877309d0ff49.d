/root/repo/target/release/deps/bench-02d5877309d0ff49.d: crates/bench/src/bin/bench.rs

/root/repo/target/release/deps/bench-02d5877309d0ff49: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
