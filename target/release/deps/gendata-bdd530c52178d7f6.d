/root/repo/target/release/deps/gendata-bdd530c52178d7f6.d: crates/ebs-experiments/src/bin/gendata.rs

/root/repo/target/release/deps/gendata-bdd530c52178d7f6: crates/ebs-experiments/src/bin/gendata.rs

crates/ebs-experiments/src/bin/gendata.rs:
