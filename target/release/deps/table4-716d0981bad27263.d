/root/repo/target/release/deps/table4-716d0981bad27263.d: crates/ebs-experiments/src/bin/table4.rs

/root/repo/target/release/deps/table4-716d0981bad27263: crates/ebs-experiments/src/bin/table4.rs

crates/ebs-experiments/src/bin/table4.rs:
