/root/repo/target/release/deps/ebs-f1f10ed75f2eb551.d: src/lib.rs

/root/repo/target/release/deps/libebs-f1f10ed75f2eb551.rlib: src/lib.rs

/root/repo/target/release/deps/libebs-f1f10ed75f2eb551.rmeta: src/lib.rs

src/lib.rs:
