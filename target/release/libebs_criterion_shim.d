/root/repo/target/release/libebs_criterion_shim.rlib: /root/repo/crates/criterion-shim/src/lib.rs
