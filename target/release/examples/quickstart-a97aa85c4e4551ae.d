/root/repo/target/release/examples/quickstart-a97aa85c4e4551ae.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-a97aa85c4e4551ae: examples/quickstart.rs

examples/quickstart.rs:
