/root/repo/target/release/examples/trace_replay-3d9875f650d7420c.d: examples/trace_replay.rs

/root/repo/target/release/examples/trace_replay-3d9875f650d7420c: examples/trace_replay.rs

examples/trace_replay.rs:
