/root/repo/target/release/examples/balancer_tuning-b7fd0f3a65186db5.d: examples/balancer_tuning.rs

/root/repo/target/release/examples/balancer_tuning-b7fd0f3a65186db5: examples/balancer_tuning.rs

examples/balancer_tuning.rs:
