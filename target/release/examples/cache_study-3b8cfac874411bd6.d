/root/repo/target/release/examples/cache_study-3b8cfac874411bd6.d: examples/cache_study.rs

/root/repo/target/release/examples/cache_study-3b8cfac874411bd6: examples/cache_study.rs

examples/cache_study.rs:
