/root/repo/target/release/examples/throttle_lending-11583e6e41561072.d: examples/throttle_lending.rs

/root/repo/target/release/examples/throttle_lending-11583e6e41561072: examples/throttle_lending.rs

examples/throttle_lending.rs:
