/root/repo/target/debug/deps/fig3-598d9d16d11c14a9.d: crates/ebs-experiments/src/bin/fig3.rs

/root/repo/target/debug/deps/libfig3-598d9d16d11c14a9.rmeta: crates/ebs-experiments/src/bin/fig3.rs

crates/ebs-experiments/src/bin/fig3.rs:
