/root/repo/target/debug/deps/fig4-2458138a5aa2b99d.d: crates/ebs-experiments/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-2458138a5aa2b99d.rmeta: crates/ebs-experiments/src/bin/fig4.rs Cargo.toml

crates/ebs-experiments/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
