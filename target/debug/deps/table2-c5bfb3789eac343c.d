/root/repo/target/debug/deps/table2-c5bfb3789eac343c.d: crates/ebs-experiments/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-c5bfb3789eac343c.rmeta: crates/ebs-experiments/src/bin/table2.rs Cargo.toml

crates/ebs-experiments/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
