/root/repo/target/debug/deps/analysis_kernels-46153d72b6a94c7e.d: crates/bench/benches/analysis_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_kernels-46153d72b6a94c7e.rmeta: crates/bench/benches/analysis_kernels.rs Cargo.toml

crates/bench/benches/analysis_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
