/root/repo/target/debug/deps/ebs_bench-1436330da727af0d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ebs_bench-1436330da727af0d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
