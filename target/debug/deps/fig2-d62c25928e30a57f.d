/root/repo/target/debug/deps/fig2-d62c25928e30a57f.d: crates/ebs-experiments/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-d62c25928e30a57f.rmeta: crates/ebs-experiments/src/bin/fig2.rs Cargo.toml

crates/ebs-experiments/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
