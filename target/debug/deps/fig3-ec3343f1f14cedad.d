/root/repo/target/debug/deps/fig3-ec3343f1f14cedad.d: crates/ebs-experiments/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-ec3343f1f14cedad: crates/ebs-experiments/src/bin/fig3.rs

crates/ebs-experiments/src/bin/fig3.rs:
