/root/repo/target/debug/deps/fig6-b9c0c7d44583d105.d: crates/ebs-experiments/src/bin/fig6.rs

/root/repo/target/debug/deps/libfig6-b9c0c7d44583d105.rmeta: crates/ebs-experiments/src/bin/fig6.rs

crates/ebs-experiments/src/bin/fig6.rs:
