/root/repo/target/debug/deps/fig5-f32963f251f9d635.d: crates/ebs-experiments/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-f32963f251f9d635.rmeta: crates/ebs-experiments/src/bin/fig5.rs Cargo.toml

crates/ebs-experiments/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
