/root/repo/target/debug/deps/fig6-fa2fdeece2078112.d: crates/ebs-experiments/src/bin/fig6.rs

/root/repo/target/debug/deps/libfig6-fa2fdeece2078112.rmeta: crates/ebs-experiments/src/bin/fig6.rs

crates/ebs-experiments/src/bin/fig6.rs:
