/root/repo/target/debug/deps/ebs_workload-5c666f2b68abba7c.d: crates/ebs-workload/src/lib.rs crates/ebs-workload/src/calibration.rs crates/ebs-workload/src/config.rs crates/ebs-workload/src/dataset.rs crates/ebs-workload/src/dist/mod.rs crates/ebs-workload/src/dist/gaussian.rs crates/ebs-workload/src/dist/onoff.rs crates/ebs-workload/src/dist/pareto.rs crates/ebs-workload/src/dist/poisson.rs crates/ebs-workload/src/dist/zipf.rs crates/ebs-workload/src/export.rs crates/ebs-workload/src/fleet.rs crates/ebs-workload/src/generator.rs crates/ebs-workload/src/lba.rs crates/ebs-workload/src/profile.rs crates/ebs-workload/src/sampler.rs crates/ebs-workload/src/spatial.rs Cargo.toml

/root/repo/target/debug/deps/libebs_workload-5c666f2b68abba7c.rmeta: crates/ebs-workload/src/lib.rs crates/ebs-workload/src/calibration.rs crates/ebs-workload/src/config.rs crates/ebs-workload/src/dataset.rs crates/ebs-workload/src/dist/mod.rs crates/ebs-workload/src/dist/gaussian.rs crates/ebs-workload/src/dist/onoff.rs crates/ebs-workload/src/dist/pareto.rs crates/ebs-workload/src/dist/poisson.rs crates/ebs-workload/src/dist/zipf.rs crates/ebs-workload/src/export.rs crates/ebs-workload/src/fleet.rs crates/ebs-workload/src/generator.rs crates/ebs-workload/src/lba.rs crates/ebs-workload/src/profile.rs crates/ebs-workload/src/sampler.rs crates/ebs-workload/src/spatial.rs Cargo.toml

crates/ebs-workload/src/lib.rs:
crates/ebs-workload/src/calibration.rs:
crates/ebs-workload/src/config.rs:
crates/ebs-workload/src/dataset.rs:
crates/ebs-workload/src/dist/mod.rs:
crates/ebs-workload/src/dist/gaussian.rs:
crates/ebs-workload/src/dist/onoff.rs:
crates/ebs-workload/src/dist/pareto.rs:
crates/ebs-workload/src/dist/poisson.rs:
crates/ebs-workload/src/dist/zipf.rs:
crates/ebs-workload/src/export.rs:
crates/ebs-workload/src/fleet.rs:
crates/ebs-workload/src/generator.rs:
crates/ebs-workload/src/lba.rs:
crates/ebs-workload/src/profile.rs:
crates/ebs-workload/src/sampler.rs:
crates/ebs-workload/src/spatial.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
