/root/repo/target/debug/deps/ebs_throttle-5e7243edce3064f2.d: crates/ebs-throttle/src/lib.rs crates/ebs-throttle/src/lending.rs crates/ebs-throttle/src/predictive.rs crates/ebs-throttle/src/rar.rs crates/ebs-throttle/src/reduction.rs crates/ebs-throttle/src/scenario.rs

/root/repo/target/debug/deps/ebs_throttle-5e7243edce3064f2: crates/ebs-throttle/src/lib.rs crates/ebs-throttle/src/lending.rs crates/ebs-throttle/src/predictive.rs crates/ebs-throttle/src/rar.rs crates/ebs-throttle/src/reduction.rs crates/ebs-throttle/src/scenario.rs

crates/ebs-throttle/src/lib.rs:
crates/ebs-throttle/src/lending.rs:
crates/ebs-throttle/src/predictive.rs:
crates/ebs-throttle/src/rar.rs:
crates/ebs-throttle/src/reduction.rs:
crates/ebs-throttle/src/scenario.rs:
