/root/repo/target/debug/deps/bench-f8fe86b2cd4caa4a.d: crates/bench/src/bin/bench.rs Cargo.toml

/root/repo/target/debug/deps/libbench-f8fe86b2cd4caa4a.rmeta: crates/bench/src/bin/bench.rs Cargo.toml

crates/bench/src/bin/bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
