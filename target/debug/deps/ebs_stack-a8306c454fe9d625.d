/root/repo/target/debug/deps/ebs_stack-a8306c454fe9d625.d: crates/ebs-stack/src/lib.rs crates/ebs-stack/src/block_server.rs crates/ebs-stack/src/chunk_server.rs crates/ebs-stack/src/diting.rs crates/ebs-stack/src/hypervisor.rs crates/ebs-stack/src/latency.rs crates/ebs-stack/src/network.rs crates/ebs-stack/src/replication.rs crates/ebs-stack/src/segment.rs crates/ebs-stack/src/sim.rs crates/ebs-stack/src/throttle_gate.rs

/root/repo/target/debug/deps/libebs_stack-a8306c454fe9d625.rmeta: crates/ebs-stack/src/lib.rs crates/ebs-stack/src/block_server.rs crates/ebs-stack/src/chunk_server.rs crates/ebs-stack/src/diting.rs crates/ebs-stack/src/hypervisor.rs crates/ebs-stack/src/latency.rs crates/ebs-stack/src/network.rs crates/ebs-stack/src/replication.rs crates/ebs-stack/src/segment.rs crates/ebs-stack/src/sim.rs crates/ebs-stack/src/throttle_gate.rs

crates/ebs-stack/src/lib.rs:
crates/ebs-stack/src/block_server.rs:
crates/ebs-stack/src/chunk_server.rs:
crates/ebs-stack/src/diting.rs:
crates/ebs-stack/src/hypervisor.rs:
crates/ebs-stack/src/latency.rs:
crates/ebs-stack/src/network.rs:
crates/ebs-stack/src/replication.rs:
crates/ebs-stack/src/segment.rs:
crates/ebs-stack/src/sim.rs:
crates/ebs-stack/src/throttle_gate.rs:
