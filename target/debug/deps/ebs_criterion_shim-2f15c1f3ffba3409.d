/root/repo/target/debug/deps/ebs_criterion_shim-2f15c1f3ffba3409.d: crates/criterion-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libebs_criterion_shim-2f15c1f3ffba3409.rmeta: crates/criterion-shim/src/lib.rs Cargo.toml

crates/criterion-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
