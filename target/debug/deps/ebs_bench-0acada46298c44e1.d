/root/repo/target/debug/deps/ebs_bench-0acada46298c44e1.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libebs_bench-0acada46298c44e1.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
