/root/repo/target/debug/deps/ebs_criterion_shim-22b9ee2c643dee01.d: crates/criterion-shim/src/lib.rs

/root/repo/target/debug/deps/libebs_criterion_shim-22b9ee2c643dee01.rmeta: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
