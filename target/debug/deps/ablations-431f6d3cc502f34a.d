/root/repo/target/debug/deps/ablations-431f6d3cc502f34a.d: crates/ebs-experiments/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-431f6d3cc502f34a.rmeta: crates/ebs-experiments/src/bin/ablations.rs

crates/ebs-experiments/src/bin/ablations.rs:
