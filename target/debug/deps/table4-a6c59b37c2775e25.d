/root/repo/target/debug/deps/table4-a6c59b37c2775e25.d: crates/ebs-experiments/src/bin/table4.rs

/root/repo/target/debug/deps/libtable4-a6c59b37c2775e25.rmeta: crates/ebs-experiments/src/bin/table4.rs

crates/ebs-experiments/src/bin/table4.rs:
