/root/repo/target/debug/deps/ebs_proptest_shim-c4d8b90c122086b8.d: crates/proptest-shim/src/lib.rs

/root/repo/target/debug/deps/libebs_proptest_shim-c4d8b90c122086b8.rmeta: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:
