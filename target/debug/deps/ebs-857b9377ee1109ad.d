/root/repo/target/debug/deps/ebs-857b9377ee1109ad.d: src/lib.rs

/root/repo/target/debug/deps/libebs-857b9377ee1109ad.rmeta: src/lib.rs

src/lib.rs:
