/root/repo/target/debug/deps/extensions-02c1cc67ea9a4470.d: crates/ebs-experiments/src/bin/extensions.rs

/root/repo/target/debug/deps/libextensions-02c1cc67ea9a4470.rmeta: crates/ebs-experiments/src/bin/extensions.rs

crates/ebs-experiments/src/bin/extensions.rs:
