/root/repo/target/debug/deps/ebs-12eac1191c1dd8c7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libebs-12eac1191c1dd8c7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
