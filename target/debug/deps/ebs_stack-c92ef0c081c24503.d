/root/repo/target/debug/deps/ebs_stack-c92ef0c081c24503.d: crates/ebs-stack/src/lib.rs crates/ebs-stack/src/block_server.rs crates/ebs-stack/src/chunk_server.rs crates/ebs-stack/src/diting.rs crates/ebs-stack/src/hypervisor.rs crates/ebs-stack/src/latency.rs crates/ebs-stack/src/network.rs crates/ebs-stack/src/replication.rs crates/ebs-stack/src/segment.rs crates/ebs-stack/src/sim.rs crates/ebs-stack/src/throttle_gate.rs Cargo.toml

/root/repo/target/debug/deps/libebs_stack-c92ef0c081c24503.rmeta: crates/ebs-stack/src/lib.rs crates/ebs-stack/src/block_server.rs crates/ebs-stack/src/chunk_server.rs crates/ebs-stack/src/diting.rs crates/ebs-stack/src/hypervisor.rs crates/ebs-stack/src/latency.rs crates/ebs-stack/src/network.rs crates/ebs-stack/src/replication.rs crates/ebs-stack/src/segment.rs crates/ebs-stack/src/sim.rs crates/ebs-stack/src/throttle_gate.rs Cargo.toml

crates/ebs-stack/src/lib.rs:
crates/ebs-stack/src/block_server.rs:
crates/ebs-stack/src/chunk_server.rs:
crates/ebs-stack/src/diting.rs:
crates/ebs-stack/src/hypervisor.rs:
crates/ebs-stack/src/latency.rs:
crates/ebs-stack/src/network.rs:
crates/ebs-stack/src/replication.rs:
crates/ebs-stack/src/segment.rs:
crates/ebs-stack/src/sim.rs:
crates/ebs-stack/src/throttle_gate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
