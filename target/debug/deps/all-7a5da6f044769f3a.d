/root/repo/target/debug/deps/all-7a5da6f044769f3a.d: crates/ebs-experiments/src/bin/all.rs

/root/repo/target/debug/deps/liball-7a5da6f044769f3a.rmeta: crates/ebs-experiments/src/bin/all.rs

crates/ebs-experiments/src/bin/all.rs:
