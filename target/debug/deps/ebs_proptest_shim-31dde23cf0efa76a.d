/root/repo/target/debug/deps/ebs_proptest_shim-31dde23cf0efa76a.d: crates/proptest-shim/src/lib.rs

/root/repo/target/debug/deps/ebs_proptest_shim-31dde23cf0efa76a: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:
