/root/repo/target/debug/deps/analysis_kernels-e10fc32fb1897c6b.d: crates/bench/benches/analysis_kernels.rs

/root/repo/target/debug/deps/libanalysis_kernels-e10fc32fb1897c6b.rmeta: crates/bench/benches/analysis_kernels.rs

crates/bench/benches/analysis_kernels.rs:
