/root/repo/target/debug/deps/table4-5a054dd141057504.d: crates/ebs-experiments/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-5a054dd141057504.rmeta: crates/ebs-experiments/src/bin/table4.rs Cargo.toml

crates/ebs-experiments/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
