/root/repo/target/debug/deps/fig4-3db6407532b2fe2e.d: crates/ebs-experiments/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-3db6407532b2fe2e.rmeta: crates/ebs-experiments/src/bin/fig4.rs Cargo.toml

crates/ebs-experiments/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
