/root/repo/target/debug/deps/properties-27c8cf9283db3b56.d: tests/properties.rs

/root/repo/target/debug/deps/properties-27c8cf9283db3b56: tests/properties.rs

tests/properties.rs:
