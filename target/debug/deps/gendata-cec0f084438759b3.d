/root/repo/target/debug/deps/gendata-cec0f084438759b3.d: crates/ebs-experiments/src/bin/gendata.rs

/root/repo/target/debug/deps/libgendata-cec0f084438759b3.rmeta: crates/ebs-experiments/src/bin/gendata.rs

crates/ebs-experiments/src/bin/gendata.rs:
