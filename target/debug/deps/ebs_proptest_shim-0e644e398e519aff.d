/root/repo/target/debug/deps/ebs_proptest_shim-0e644e398e519aff.d: crates/proptest-shim/src/lib.rs

/root/repo/target/debug/deps/libebs_proptest_shim-0e644e398e519aff.rmeta: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:
