/root/repo/target/debug/deps/all-2f259a24fbaf9ae0.d: crates/ebs-experiments/src/bin/all.rs

/root/repo/target/debug/deps/liball-2f259a24fbaf9ae0.rmeta: crates/ebs-experiments/src/bin/all.rs

crates/ebs-experiments/src/bin/all.rs:
