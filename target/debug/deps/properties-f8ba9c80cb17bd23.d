/root/repo/target/debug/deps/properties-f8ba9c80cb17bd23.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-f8ba9c80cb17bd23.rmeta: tests/properties.rs

tests/properties.rs:
