/root/repo/target/debug/deps/ebs_proptest_shim-356ddf5ff16ef3d2.d: crates/proptest-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libebs_proptest_shim-356ddf5ff16ef3d2.rmeta: crates/proptest-shim/src/lib.rs Cargo.toml

crates/proptest-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
