/root/repo/target/debug/deps/fig7-b4cfc300c9b1533f.d: crates/ebs-experiments/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-b4cfc300c9b1533f: crates/ebs-experiments/src/bin/fig7.rs

crates/ebs-experiments/src/bin/fig7.rs:
