/root/repo/target/debug/deps/fig6-d4c884ebdb8cc9ae.d: crates/ebs-experiments/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-d4c884ebdb8cc9ae.rmeta: crates/ebs-experiments/src/bin/fig6.rs Cargo.toml

crates/ebs-experiments/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
