/root/repo/target/debug/deps/stack_path-bda1071c39bd4f2d.d: crates/bench/benches/stack_path.rs Cargo.toml

/root/repo/target/debug/deps/libstack_path-bda1071c39bd4f2d.rmeta: crates/bench/benches/stack_path.rs Cargo.toml

crates/bench/benches/stack_path.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
