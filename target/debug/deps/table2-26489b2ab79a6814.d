/root/repo/target/debug/deps/table2-26489b2ab79a6814.d: crates/ebs-experiments/src/bin/table2.rs

/root/repo/target/debug/deps/table2-26489b2ab79a6814: crates/ebs-experiments/src/bin/table2.rs

crates/ebs-experiments/src/bin/table2.rs:
