/root/repo/target/debug/deps/gendata-7308e0e304508cba.d: crates/ebs-experiments/src/bin/gendata.rs Cargo.toml

/root/repo/target/debug/deps/libgendata-7308e0e304508cba.rmeta: crates/ebs-experiments/src/bin/gendata.rs Cargo.toml

crates/ebs-experiments/src/bin/gendata.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
