/root/repo/target/debug/deps/failure_injection-9f0aed2e4202f680.d: tests/failure_injection.rs

/root/repo/target/debug/deps/libfailure_injection-9f0aed2e4202f680.rmeta: tests/failure_injection.rs

tests/failure_injection.rs:
