/root/repo/target/debug/deps/stack_path-c60fe2db9174d856.d: crates/bench/benches/stack_path.rs

/root/repo/target/debug/deps/libstack_path-c60fe2db9174d856.rmeta: crates/bench/benches/stack_path.rs

crates/bench/benches/stack_path.rs:
