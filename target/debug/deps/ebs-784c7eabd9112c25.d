/root/repo/target/debug/deps/ebs-784c7eabd9112c25.d: src/lib.rs

/root/repo/target/debug/deps/libebs-784c7eabd9112c25.rmeta: src/lib.rs

src/lib.rs:
