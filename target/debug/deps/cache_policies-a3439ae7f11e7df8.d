/root/repo/target/debug/deps/cache_policies-a3439ae7f11e7df8.d: crates/bench/benches/cache_policies.rs Cargo.toml

/root/repo/target/debug/deps/libcache_policies-a3439ae7f11e7df8.rmeta: crates/bench/benches/cache_policies.rs Cargo.toml

crates/bench/benches/cache_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
