/root/repo/target/debug/deps/gendata-5106d6eca1495892.d: crates/ebs-experiments/src/bin/gendata.rs

/root/repo/target/debug/deps/libgendata-5106d6eca1495892.rmeta: crates/ebs-experiments/src/bin/gendata.rs

crates/ebs-experiments/src/bin/gendata.rs:
