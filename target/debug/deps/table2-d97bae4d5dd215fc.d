/root/repo/target/debug/deps/table2-d97bae4d5dd215fc.d: crates/ebs-experiments/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-d97bae4d5dd215fc.rmeta: crates/ebs-experiments/src/bin/table2.rs

crates/ebs-experiments/src/bin/table2.rs:
