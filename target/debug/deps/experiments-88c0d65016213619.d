/root/repo/target/debug/deps/experiments-88c0d65016213619.d: crates/bench/benches/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-88c0d65016213619.rmeta: crates/bench/benches/experiments.rs Cargo.toml

crates/bench/benches/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
