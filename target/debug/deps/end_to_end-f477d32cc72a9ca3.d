/root/repo/target/debug/deps/end_to_end-f477d32cc72a9ca3.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-f477d32cc72a9ca3.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
