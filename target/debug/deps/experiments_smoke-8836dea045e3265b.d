/root/repo/target/debug/deps/experiments_smoke-8836dea045e3265b.d: tests/experiments_smoke.rs

/root/repo/target/debug/deps/experiments_smoke-8836dea045e3265b: tests/experiments_smoke.rs

tests/experiments_smoke.rs:
