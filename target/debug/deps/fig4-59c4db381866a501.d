/root/repo/target/debug/deps/fig4-59c4db381866a501.d: crates/ebs-experiments/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-59c4db381866a501: crates/ebs-experiments/src/bin/fig4.rs

crates/ebs-experiments/src/bin/fig4.rs:
