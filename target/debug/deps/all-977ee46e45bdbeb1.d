/root/repo/target/debug/deps/all-977ee46e45bdbeb1.d: crates/ebs-experiments/src/bin/all.rs Cargo.toml

/root/repo/target/debug/deps/liball-977ee46e45bdbeb1.rmeta: crates/ebs-experiments/src/bin/all.rs Cargo.toml

crates/ebs-experiments/src/bin/all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
