/root/repo/target/debug/deps/paper_shapes-efef74db669bcf86.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-efef74db669bcf86: tests/paper_shapes.rs

tests/paper_shapes.rs:
