/root/repo/target/debug/deps/predictors-38279be5c220c224.d: crates/bench/benches/predictors.rs

/root/repo/target/debug/deps/libpredictors-38279be5c220c224.rmeta: crates/bench/benches/predictors.rs

crates/bench/benches/predictors.rs:
