/root/repo/target/debug/deps/table4-344afb989f99048e.d: crates/ebs-experiments/src/bin/table4.rs

/root/repo/target/debug/deps/table4-344afb989f99048e: crates/ebs-experiments/src/bin/table4.rs

crates/ebs-experiments/src/bin/table4.rs:
