/root/repo/target/debug/deps/all-8283ec0ba6c2024e.d: crates/ebs-experiments/src/bin/all.rs

/root/repo/target/debug/deps/all-8283ec0ba6c2024e: crates/ebs-experiments/src/bin/all.rs

crates/ebs-experiments/src/bin/all.rs:
