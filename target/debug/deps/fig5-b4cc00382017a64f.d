/root/repo/target/debug/deps/fig5-b4cc00382017a64f.d: crates/ebs-experiments/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-b4cc00382017a64f: crates/ebs-experiments/src/bin/fig5.rs

crates/ebs-experiments/src/bin/fig5.rs:
