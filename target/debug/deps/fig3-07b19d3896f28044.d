/root/repo/target/debug/deps/fig3-07b19d3896f28044.d: crates/ebs-experiments/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-07b19d3896f28044.rmeta: crates/ebs-experiments/src/bin/fig3.rs Cargo.toml

crates/ebs-experiments/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
