/root/repo/target/debug/deps/table3-b4a3004abaa0b299.d: crates/ebs-experiments/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-b4a3004abaa0b299.rmeta: crates/ebs-experiments/src/bin/table3.rs

crates/ebs-experiments/src/bin/table3.rs:
