/root/repo/target/debug/deps/ebs_cache-fedec06d0a9584c2.d: crates/ebs-cache/src/lib.rs crates/ebs-cache/src/fifo.rs crates/ebs-cache/src/frozen.rs crates/ebs-cache/src/hottest_block.rs crates/ebs-cache/src/hybrid.rs crates/ebs-cache/src/lfu.rs crates/ebs-cache/src/location.rs crates/ebs-cache/src/lru.rs crates/ebs-cache/src/policy.rs crates/ebs-cache/src/simulate.rs crates/ebs-cache/src/utilization.rs

/root/repo/target/debug/deps/libebs_cache-fedec06d0a9584c2.rlib: crates/ebs-cache/src/lib.rs crates/ebs-cache/src/fifo.rs crates/ebs-cache/src/frozen.rs crates/ebs-cache/src/hottest_block.rs crates/ebs-cache/src/hybrid.rs crates/ebs-cache/src/lfu.rs crates/ebs-cache/src/location.rs crates/ebs-cache/src/lru.rs crates/ebs-cache/src/policy.rs crates/ebs-cache/src/simulate.rs crates/ebs-cache/src/utilization.rs

/root/repo/target/debug/deps/libebs_cache-fedec06d0a9584c2.rmeta: crates/ebs-cache/src/lib.rs crates/ebs-cache/src/fifo.rs crates/ebs-cache/src/frozen.rs crates/ebs-cache/src/hottest_block.rs crates/ebs-cache/src/hybrid.rs crates/ebs-cache/src/lfu.rs crates/ebs-cache/src/location.rs crates/ebs-cache/src/lru.rs crates/ebs-cache/src/policy.rs crates/ebs-cache/src/simulate.rs crates/ebs-cache/src/utilization.rs

crates/ebs-cache/src/lib.rs:
crates/ebs-cache/src/fifo.rs:
crates/ebs-cache/src/frozen.rs:
crates/ebs-cache/src/hottest_block.rs:
crates/ebs-cache/src/hybrid.rs:
crates/ebs-cache/src/lfu.rs:
crates/ebs-cache/src/location.rs:
crates/ebs-cache/src/lru.rs:
crates/ebs-cache/src/policy.rs:
crates/ebs-cache/src/simulate.rs:
crates/ebs-cache/src/utilization.rs:
