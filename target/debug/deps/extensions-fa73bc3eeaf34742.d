/root/repo/target/debug/deps/extensions-fa73bc3eeaf34742.d: crates/ebs-experiments/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-fa73bc3eeaf34742.rmeta: crates/ebs-experiments/src/bin/extensions.rs Cargo.toml

crates/ebs-experiments/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
