/root/repo/target/debug/deps/gendata-bfe1bea75f221113.d: crates/ebs-experiments/src/bin/gendata.rs Cargo.toml

/root/repo/target/debug/deps/libgendata-bfe1bea75f221113.rmeta: crates/ebs-experiments/src/bin/gendata.rs Cargo.toml

crates/ebs-experiments/src/bin/gendata.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
