/root/repo/target/debug/deps/ebs_experiments-3edcce4159474ef6.d: crates/ebs-experiments/src/lib.rs crates/ebs-experiments/src/ablations.rs crates/ebs-experiments/src/driver.rs crates/ebs-experiments/src/extensions.rs crates/ebs-experiments/src/fig2.rs crates/ebs-experiments/src/fig3.rs crates/ebs-experiments/src/fig4.rs crates/ebs-experiments/src/fig5.rs crates/ebs-experiments/src/fig6.rs crates/ebs-experiments/src/fig7.rs crates/ebs-experiments/src/scenario.rs crates/ebs-experiments/src/table2.rs crates/ebs-experiments/src/table3.rs crates/ebs-experiments/src/table4.rs

/root/repo/target/debug/deps/libebs_experiments-3edcce4159474ef6.rlib: crates/ebs-experiments/src/lib.rs crates/ebs-experiments/src/ablations.rs crates/ebs-experiments/src/driver.rs crates/ebs-experiments/src/extensions.rs crates/ebs-experiments/src/fig2.rs crates/ebs-experiments/src/fig3.rs crates/ebs-experiments/src/fig4.rs crates/ebs-experiments/src/fig5.rs crates/ebs-experiments/src/fig6.rs crates/ebs-experiments/src/fig7.rs crates/ebs-experiments/src/scenario.rs crates/ebs-experiments/src/table2.rs crates/ebs-experiments/src/table3.rs crates/ebs-experiments/src/table4.rs

/root/repo/target/debug/deps/libebs_experiments-3edcce4159474ef6.rmeta: crates/ebs-experiments/src/lib.rs crates/ebs-experiments/src/ablations.rs crates/ebs-experiments/src/driver.rs crates/ebs-experiments/src/extensions.rs crates/ebs-experiments/src/fig2.rs crates/ebs-experiments/src/fig3.rs crates/ebs-experiments/src/fig4.rs crates/ebs-experiments/src/fig5.rs crates/ebs-experiments/src/fig6.rs crates/ebs-experiments/src/fig7.rs crates/ebs-experiments/src/scenario.rs crates/ebs-experiments/src/table2.rs crates/ebs-experiments/src/table3.rs crates/ebs-experiments/src/table4.rs

crates/ebs-experiments/src/lib.rs:
crates/ebs-experiments/src/ablations.rs:
crates/ebs-experiments/src/driver.rs:
crates/ebs-experiments/src/extensions.rs:
crates/ebs-experiments/src/fig2.rs:
crates/ebs-experiments/src/fig3.rs:
crates/ebs-experiments/src/fig4.rs:
crates/ebs-experiments/src/fig5.rs:
crates/ebs-experiments/src/fig6.rs:
crates/ebs-experiments/src/fig7.rs:
crates/ebs-experiments/src/scenario.rs:
crates/ebs-experiments/src/table2.rs:
crates/ebs-experiments/src/table3.rs:
crates/ebs-experiments/src/table4.rs:
