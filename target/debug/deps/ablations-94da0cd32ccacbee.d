/root/repo/target/debug/deps/ablations-94da0cd32ccacbee.d: crates/ebs-experiments/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-94da0cd32ccacbee.rmeta: crates/ebs-experiments/src/bin/ablations.rs Cargo.toml

crates/ebs-experiments/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
