/root/repo/target/debug/deps/fig6-6db1d3f52c5747c3.d: crates/ebs-experiments/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-6db1d3f52c5747c3.rmeta: crates/ebs-experiments/src/bin/fig6.rs Cargo.toml

crates/ebs-experiments/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
