/root/repo/target/debug/deps/ebs_cache-976e5c9785e66216.d: crates/ebs-cache/src/lib.rs crates/ebs-cache/src/fifo.rs crates/ebs-cache/src/frozen.rs crates/ebs-cache/src/hottest_block.rs crates/ebs-cache/src/hybrid.rs crates/ebs-cache/src/lfu.rs crates/ebs-cache/src/location.rs crates/ebs-cache/src/lru.rs crates/ebs-cache/src/policy.rs crates/ebs-cache/src/simulate.rs crates/ebs-cache/src/utilization.rs Cargo.toml

/root/repo/target/debug/deps/libebs_cache-976e5c9785e66216.rmeta: crates/ebs-cache/src/lib.rs crates/ebs-cache/src/fifo.rs crates/ebs-cache/src/frozen.rs crates/ebs-cache/src/hottest_block.rs crates/ebs-cache/src/hybrid.rs crates/ebs-cache/src/lfu.rs crates/ebs-cache/src/location.rs crates/ebs-cache/src/lru.rs crates/ebs-cache/src/policy.rs crates/ebs-cache/src/simulate.rs crates/ebs-cache/src/utilization.rs Cargo.toml

crates/ebs-cache/src/lib.rs:
crates/ebs-cache/src/fifo.rs:
crates/ebs-cache/src/frozen.rs:
crates/ebs-cache/src/hottest_block.rs:
crates/ebs-cache/src/hybrid.rs:
crates/ebs-cache/src/lfu.rs:
crates/ebs-cache/src/location.rs:
crates/ebs-cache/src/lru.rs:
crates/ebs-cache/src/policy.rs:
crates/ebs-cache/src/simulate.rs:
crates/ebs-cache/src/utilization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
