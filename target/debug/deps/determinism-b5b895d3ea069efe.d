/root/repo/target/debug/deps/determinism-b5b895d3ea069efe.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-b5b895d3ea069efe: tests/determinism.rs

tests/determinism.rs:
