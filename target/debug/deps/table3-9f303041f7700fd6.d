/root/repo/target/debug/deps/table3-9f303041f7700fd6.d: crates/ebs-experiments/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-9f303041f7700fd6.rmeta: crates/ebs-experiments/src/bin/table3.rs

crates/ebs-experiments/src/bin/table3.rs:
