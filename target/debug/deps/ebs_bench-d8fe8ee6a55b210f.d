/root/repo/target/debug/deps/ebs_bench-d8fe8ee6a55b210f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libebs_bench-d8fe8ee6a55b210f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
