/root/repo/target/debug/deps/fig2-396509b699ab0e04.d: crates/ebs-experiments/src/bin/fig2.rs

/root/repo/target/debug/deps/libfig2-396509b699ab0e04.rmeta: crates/ebs-experiments/src/bin/fig2.rs

crates/ebs-experiments/src/bin/fig2.rs:
