/root/repo/target/debug/deps/fig2-198ecb9af30f3392.d: crates/ebs-experiments/src/bin/fig2.rs

/root/repo/target/debug/deps/libfig2-198ecb9af30f3392.rmeta: crates/ebs-experiments/src/bin/fig2.rs

crates/ebs-experiments/src/bin/fig2.rs:
