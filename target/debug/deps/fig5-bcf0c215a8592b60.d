/root/repo/target/debug/deps/fig5-bcf0c215a8592b60.d: crates/ebs-experiments/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-bcf0c215a8592b60.rmeta: crates/ebs-experiments/src/bin/fig5.rs

crates/ebs-experiments/src/bin/fig5.rs:
