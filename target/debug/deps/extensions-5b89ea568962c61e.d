/root/repo/target/debug/deps/extensions-5b89ea568962c61e.d: crates/ebs-experiments/src/bin/extensions.rs

/root/repo/target/debug/deps/extensions-5b89ea568962c61e: crates/ebs-experiments/src/bin/extensions.rs

crates/ebs-experiments/src/bin/extensions.rs:
