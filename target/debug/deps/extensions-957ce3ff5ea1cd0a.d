/root/repo/target/debug/deps/extensions-957ce3ff5ea1cd0a.d: crates/ebs-experiments/src/bin/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-957ce3ff5ea1cd0a.rmeta: crates/ebs-experiments/src/bin/extensions.rs Cargo.toml

crates/ebs-experiments/src/bin/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
