/root/repo/target/debug/deps/ebs_bench-4146e41d6b038166.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libebs_bench-4146e41d6b038166.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
