/root/repo/target/debug/deps/fig2-b1ea7e4e529df16b.d: crates/ebs-experiments/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-b1ea7e4e529df16b: crates/ebs-experiments/src/bin/fig2.rs

crates/ebs-experiments/src/bin/fig2.rs:
