/root/repo/target/debug/deps/ebs_cache-a649e4b116889f43.d: crates/ebs-cache/src/lib.rs crates/ebs-cache/src/fifo.rs crates/ebs-cache/src/frozen.rs crates/ebs-cache/src/hottest_block.rs crates/ebs-cache/src/hybrid.rs crates/ebs-cache/src/lfu.rs crates/ebs-cache/src/location.rs crates/ebs-cache/src/lru.rs crates/ebs-cache/src/policy.rs crates/ebs-cache/src/simulate.rs crates/ebs-cache/src/utilization.rs

/root/repo/target/debug/deps/libebs_cache-a649e4b116889f43.rmeta: crates/ebs-cache/src/lib.rs crates/ebs-cache/src/fifo.rs crates/ebs-cache/src/frozen.rs crates/ebs-cache/src/hottest_block.rs crates/ebs-cache/src/hybrid.rs crates/ebs-cache/src/lfu.rs crates/ebs-cache/src/location.rs crates/ebs-cache/src/lru.rs crates/ebs-cache/src/policy.rs crates/ebs-cache/src/simulate.rs crates/ebs-cache/src/utilization.rs

crates/ebs-cache/src/lib.rs:
crates/ebs-cache/src/fifo.rs:
crates/ebs-cache/src/frozen.rs:
crates/ebs-cache/src/hottest_block.rs:
crates/ebs-cache/src/hybrid.rs:
crates/ebs-cache/src/lfu.rs:
crates/ebs-cache/src/location.rs:
crates/ebs-cache/src/lru.rs:
crates/ebs-cache/src/policy.rs:
crates/ebs-cache/src/simulate.rs:
crates/ebs-cache/src/utilization.rs:
