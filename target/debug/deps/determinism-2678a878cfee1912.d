/root/repo/target/debug/deps/determinism-2678a878cfee1912.d: tests/determinism.rs

/root/repo/target/debug/deps/libdeterminism-2678a878cfee1912.rmeta: tests/determinism.rs

tests/determinism.rs:
