/root/repo/target/debug/deps/ebs-308853737c515e68.d: src/lib.rs

/root/repo/target/debug/deps/ebs-308853737c515e68: src/lib.rs

src/lib.rs:
