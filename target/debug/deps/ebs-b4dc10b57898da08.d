/root/repo/target/debug/deps/ebs-b4dc10b57898da08.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libebs-b4dc10b57898da08.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
