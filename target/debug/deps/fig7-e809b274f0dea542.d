/root/repo/target/debug/deps/fig7-e809b274f0dea542.d: crates/ebs-experiments/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-e809b274f0dea542.rmeta: crates/ebs-experiments/src/bin/fig7.rs Cargo.toml

crates/ebs-experiments/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
