/root/repo/target/debug/deps/workload_gen-7a55e209da328176.d: crates/bench/benches/workload_gen.rs

/root/repo/target/debug/deps/libworkload_gen-7a55e209da328176.rmeta: crates/bench/benches/workload_gen.rs

crates/bench/benches/workload_gen.rs:
