/root/repo/target/debug/deps/ablations-2cee19ce86c451da.d: crates/ebs-experiments/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-2cee19ce86c451da.rmeta: crates/ebs-experiments/src/bin/ablations.rs Cargo.toml

crates/ebs-experiments/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
