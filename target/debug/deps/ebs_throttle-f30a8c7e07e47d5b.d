/root/repo/target/debug/deps/ebs_throttle-f30a8c7e07e47d5b.d: crates/ebs-throttle/src/lib.rs crates/ebs-throttle/src/lending.rs crates/ebs-throttle/src/predictive.rs crates/ebs-throttle/src/rar.rs crates/ebs-throttle/src/reduction.rs crates/ebs-throttle/src/scenario.rs

/root/repo/target/debug/deps/libebs_throttle-f30a8c7e07e47d5b.rmeta: crates/ebs-throttle/src/lib.rs crates/ebs-throttle/src/lending.rs crates/ebs-throttle/src/predictive.rs crates/ebs-throttle/src/rar.rs crates/ebs-throttle/src/reduction.rs crates/ebs-throttle/src/scenario.rs

crates/ebs-throttle/src/lib.rs:
crates/ebs-throttle/src/lending.rs:
crates/ebs-throttle/src/predictive.rs:
crates/ebs-throttle/src/rar.rs:
crates/ebs-throttle/src/reduction.rs:
crates/ebs-throttle/src/scenario.rs:
