/root/repo/target/debug/deps/ebs_proptest_shim-fd194bf0d174d298.d: crates/proptest-shim/src/lib.rs

/root/repo/target/debug/deps/libebs_proptest_shim-fd194bf0d174d298.rlib: crates/proptest-shim/src/lib.rs

/root/repo/target/debug/deps/libebs_proptest_shim-fd194bf0d174d298.rmeta: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:
