/root/repo/target/debug/deps/ebs_analysis-885750a1f3904c4d.d: crates/ebs-analysis/src/lib.rs crates/ebs-analysis/src/aggregate.rs crates/ebs-analysis/src/ccr.rs crates/ebs-analysis/src/cdf.rs crates/ebs-analysis/src/cov.rs crates/ebs-analysis/src/gini.rs crates/ebs-analysis/src/histogram.rs crates/ebs-analysis/src/mse.rs crates/ebs-analysis/src/p2a.rs crates/ebs-analysis/src/quantile.rs crates/ebs-analysis/src/table.rs crates/ebs-analysis/src/timeseries.rs crates/ebs-analysis/src/wr_ratio.rs

/root/repo/target/debug/deps/libebs_analysis-885750a1f3904c4d.rmeta: crates/ebs-analysis/src/lib.rs crates/ebs-analysis/src/aggregate.rs crates/ebs-analysis/src/ccr.rs crates/ebs-analysis/src/cdf.rs crates/ebs-analysis/src/cov.rs crates/ebs-analysis/src/gini.rs crates/ebs-analysis/src/histogram.rs crates/ebs-analysis/src/mse.rs crates/ebs-analysis/src/p2a.rs crates/ebs-analysis/src/quantile.rs crates/ebs-analysis/src/table.rs crates/ebs-analysis/src/timeseries.rs crates/ebs-analysis/src/wr_ratio.rs

crates/ebs-analysis/src/lib.rs:
crates/ebs-analysis/src/aggregate.rs:
crates/ebs-analysis/src/ccr.rs:
crates/ebs-analysis/src/cdf.rs:
crates/ebs-analysis/src/cov.rs:
crates/ebs-analysis/src/gini.rs:
crates/ebs-analysis/src/histogram.rs:
crates/ebs-analysis/src/mse.rs:
crates/ebs-analysis/src/p2a.rs:
crates/ebs-analysis/src/quantile.rs:
crates/ebs-analysis/src/table.rs:
crates/ebs-analysis/src/timeseries.rs:
crates/ebs-analysis/src/wr_ratio.rs:
