/root/repo/target/debug/deps/table3-192763c4063b6e5b.d: crates/ebs-experiments/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-192763c4063b6e5b.rmeta: crates/ebs-experiments/src/bin/table3.rs Cargo.toml

crates/ebs-experiments/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
