/root/repo/target/debug/deps/gendata-cb0c32dc4c54f260.d: crates/ebs-experiments/src/bin/gendata.rs

/root/repo/target/debug/deps/gendata-cb0c32dc4c54f260: crates/ebs-experiments/src/bin/gendata.rs

crates/ebs-experiments/src/bin/gendata.rs:
