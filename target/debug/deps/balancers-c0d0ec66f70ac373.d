/root/repo/target/debug/deps/balancers-c0d0ec66f70ac373.d: crates/bench/benches/balancers.rs

/root/repo/target/debug/deps/libbalancers-c0d0ec66f70ac373.rmeta: crates/bench/benches/balancers.rs

crates/bench/benches/balancers.rs:
