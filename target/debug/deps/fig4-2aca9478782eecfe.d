/root/repo/target/debug/deps/fig4-2aca9478782eecfe.d: crates/ebs-experiments/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-2aca9478782eecfe.rmeta: crates/ebs-experiments/src/bin/fig4.rs

crates/ebs-experiments/src/bin/fig4.rs:
