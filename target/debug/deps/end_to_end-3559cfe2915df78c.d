/root/repo/target/debug/deps/end_to_end-3559cfe2915df78c.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3559cfe2915df78c: tests/end_to_end.rs

tests/end_to_end.rs:
