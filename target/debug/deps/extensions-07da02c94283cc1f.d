/root/repo/target/debug/deps/extensions-07da02c94283cc1f.d: crates/ebs-experiments/src/bin/extensions.rs

/root/repo/target/debug/deps/libextensions-07da02c94283cc1f.rmeta: crates/ebs-experiments/src/bin/extensions.rs

crates/ebs-experiments/src/bin/extensions.rs:
