/root/repo/target/debug/deps/fig4-f4500d2540f3d3d8.d: crates/ebs-experiments/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-f4500d2540f3d3d8.rmeta: crates/ebs-experiments/src/bin/fig4.rs

crates/ebs-experiments/src/bin/fig4.rs:
