/root/repo/target/debug/deps/fig5-2e80941794bc0a79.d: crates/ebs-experiments/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-2e80941794bc0a79.rmeta: crates/ebs-experiments/src/bin/fig5.rs Cargo.toml

crates/ebs-experiments/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
