/root/repo/target/debug/deps/ablations-42dc7ccba57708af.d: crates/ebs-experiments/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-42dc7ccba57708af: crates/ebs-experiments/src/bin/ablations.rs

crates/ebs-experiments/src/bin/ablations.rs:
