/root/repo/target/debug/deps/parallel-925317b33c1b285a.d: crates/bench/benches/parallel.rs Cargo.toml

/root/repo/target/debug/deps/libparallel-925317b33c1b285a.rmeta: crates/bench/benches/parallel.rs Cargo.toml

crates/bench/benches/parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
