/root/repo/target/debug/deps/ebs_bench-cff6ceb84f04dbc7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libebs_bench-cff6ceb84f04dbc7.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libebs_bench-cff6ceb84f04dbc7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
