/root/repo/target/debug/deps/experiments-8ed8bdef4b066da0.d: crates/bench/benches/experiments.rs

/root/repo/target/debug/deps/libexperiments-8ed8bdef4b066da0.rmeta: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
