/root/repo/target/debug/deps/predictors-d167364cdd0c71d0.d: crates/bench/benches/predictors.rs Cargo.toml

/root/repo/target/debug/deps/libpredictors-d167364cdd0c71d0.rmeta: crates/bench/benches/predictors.rs Cargo.toml

crates/bench/benches/predictors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
