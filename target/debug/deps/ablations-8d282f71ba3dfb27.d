/root/repo/target/debug/deps/ablations-8d282f71ba3dfb27.d: crates/ebs-experiments/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-8d282f71ba3dfb27.rmeta: crates/ebs-experiments/src/bin/ablations.rs

crates/ebs-experiments/src/bin/ablations.rs:
