/root/repo/target/debug/deps/ebs_core-52496c002848a343.d: crates/ebs-core/src/lib.rs crates/ebs-core/src/apps.rs crates/ebs-core/src/error.rs crates/ebs-core/src/ids.rs crates/ebs-core/src/io.rs crates/ebs-core/src/metric.rs crates/ebs-core/src/parallel.rs crates/ebs-core/src/rng.rs crates/ebs-core/src/spec.rs crates/ebs-core/src/time.rs crates/ebs-core/src/topology.rs crates/ebs-core/src/trace.rs crates/ebs-core/src/units.rs

/root/repo/target/debug/deps/libebs_core-52496c002848a343.rmeta: crates/ebs-core/src/lib.rs crates/ebs-core/src/apps.rs crates/ebs-core/src/error.rs crates/ebs-core/src/ids.rs crates/ebs-core/src/io.rs crates/ebs-core/src/metric.rs crates/ebs-core/src/parallel.rs crates/ebs-core/src/rng.rs crates/ebs-core/src/spec.rs crates/ebs-core/src/time.rs crates/ebs-core/src/topology.rs crates/ebs-core/src/trace.rs crates/ebs-core/src/units.rs

crates/ebs-core/src/lib.rs:
crates/ebs-core/src/apps.rs:
crates/ebs-core/src/error.rs:
crates/ebs-core/src/ids.rs:
crates/ebs-core/src/io.rs:
crates/ebs-core/src/metric.rs:
crates/ebs-core/src/parallel.rs:
crates/ebs-core/src/rng.rs:
crates/ebs-core/src/spec.rs:
crates/ebs-core/src/time.rs:
crates/ebs-core/src/topology.rs:
crates/ebs-core/src/trace.rs:
crates/ebs-core/src/units.rs:
