/root/repo/target/debug/deps/fig5-b12cb07bad637f1b.d: crates/ebs-experiments/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-b12cb07bad637f1b.rmeta: crates/ebs-experiments/src/bin/fig5.rs

crates/ebs-experiments/src/bin/fig5.rs:
