/root/repo/target/debug/deps/ebs_balance-93332833a1d18701.d: crates/ebs-balance/src/lib.rs crates/ebs-balance/src/bs_balancer.rs crates/ebs-balance/src/dispatch.rs crates/ebs-balance/src/importer.rs crates/ebs-balance/src/migration.rs crates/ebs-balance/src/read_write.rs crates/ebs-balance/src/wt_rebind.rs Cargo.toml

/root/repo/target/debug/deps/libebs_balance-93332833a1d18701.rmeta: crates/ebs-balance/src/lib.rs crates/ebs-balance/src/bs_balancer.rs crates/ebs-balance/src/dispatch.rs crates/ebs-balance/src/importer.rs crates/ebs-balance/src/migration.rs crates/ebs-balance/src/read_write.rs crates/ebs-balance/src/wt_rebind.rs Cargo.toml

crates/ebs-balance/src/lib.rs:
crates/ebs-balance/src/bs_balancer.rs:
crates/ebs-balance/src/dispatch.rs:
crates/ebs-balance/src/importer.rs:
crates/ebs-balance/src/migration.rs:
crates/ebs-balance/src/read_write.rs:
crates/ebs-balance/src/wt_rebind.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
