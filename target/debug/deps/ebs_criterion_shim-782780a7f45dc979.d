/root/repo/target/debug/deps/ebs_criterion_shim-782780a7f45dc979.d: crates/criterion-shim/src/lib.rs

/root/repo/target/debug/deps/libebs_criterion_shim-782780a7f45dc979.rmeta: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
