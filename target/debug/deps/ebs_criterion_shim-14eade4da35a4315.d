/root/repo/target/debug/deps/ebs_criterion_shim-14eade4da35a4315.d: crates/criterion-shim/src/lib.rs

/root/repo/target/debug/deps/libebs_criterion_shim-14eade4da35a4315.rlib: crates/criterion-shim/src/lib.rs

/root/repo/target/debug/deps/libebs_criterion_shim-14eade4da35a4315.rmeta: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
