/root/repo/target/debug/deps/table2-3992422a8d908775.d: crates/ebs-experiments/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-3992422a8d908775.rmeta: crates/ebs-experiments/src/bin/table2.rs Cargo.toml

crates/ebs-experiments/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
