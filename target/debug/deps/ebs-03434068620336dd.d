/root/repo/target/debug/deps/ebs-03434068620336dd.d: src/lib.rs

/root/repo/target/debug/deps/libebs-03434068620336dd.rlib: src/lib.rs

/root/repo/target/debug/deps/libebs-03434068620336dd.rmeta: src/lib.rs

src/lib.rs:
