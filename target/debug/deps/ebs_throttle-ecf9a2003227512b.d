/root/repo/target/debug/deps/ebs_throttle-ecf9a2003227512b.d: crates/ebs-throttle/src/lib.rs crates/ebs-throttle/src/lending.rs crates/ebs-throttle/src/predictive.rs crates/ebs-throttle/src/rar.rs crates/ebs-throttle/src/reduction.rs crates/ebs-throttle/src/scenario.rs

/root/repo/target/debug/deps/libebs_throttle-ecf9a2003227512b.rmeta: crates/ebs-throttle/src/lib.rs crates/ebs-throttle/src/lending.rs crates/ebs-throttle/src/predictive.rs crates/ebs-throttle/src/rar.rs crates/ebs-throttle/src/reduction.rs crates/ebs-throttle/src/scenario.rs

crates/ebs-throttle/src/lib.rs:
crates/ebs-throttle/src/lending.rs:
crates/ebs-throttle/src/predictive.rs:
crates/ebs-throttle/src/rar.rs:
crates/ebs-throttle/src/reduction.rs:
crates/ebs-throttle/src/scenario.rs:
