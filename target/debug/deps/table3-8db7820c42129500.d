/root/repo/target/debug/deps/table3-8db7820c42129500.d: crates/ebs-experiments/src/bin/table3.rs

/root/repo/target/debug/deps/table3-8db7820c42129500: crates/ebs-experiments/src/bin/table3.rs

crates/ebs-experiments/src/bin/table3.rs:
