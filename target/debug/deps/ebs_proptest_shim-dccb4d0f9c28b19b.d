/root/repo/target/debug/deps/ebs_proptest_shim-dccb4d0f9c28b19b.d: crates/proptest-shim/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libebs_proptest_shim-dccb4d0f9c28b19b.rmeta: crates/proptest-shim/src/lib.rs Cargo.toml

crates/proptest-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
