/root/repo/target/debug/deps/workload_gen-7f9141ea7ffdaacb.d: crates/bench/benches/workload_gen.rs Cargo.toml

/root/repo/target/debug/deps/libworkload_gen-7f9141ea7ffdaacb.rmeta: crates/bench/benches/workload_gen.rs Cargo.toml

crates/bench/benches/workload_gen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
