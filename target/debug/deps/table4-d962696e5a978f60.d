/root/repo/target/debug/deps/table4-d962696e5a978f60.d: crates/ebs-experiments/src/bin/table4.rs

/root/repo/target/debug/deps/libtable4-d962696e5a978f60.rmeta: crates/ebs-experiments/src/bin/table4.rs

crates/ebs-experiments/src/bin/table4.rs:
