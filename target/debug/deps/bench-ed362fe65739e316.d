/root/repo/target/debug/deps/bench-ed362fe65739e316.d: crates/bench/src/bin/bench.rs Cargo.toml

/root/repo/target/debug/deps/libbench-ed362fe65739e316.rmeta: crates/bench/src/bin/bench.rs Cargo.toml

crates/bench/src/bin/bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
