/root/repo/target/debug/deps/fig6-9883d7c9d354b53c.d: crates/ebs-experiments/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-9883d7c9d354b53c: crates/ebs-experiments/src/bin/fig6.rs

crates/ebs-experiments/src/bin/fig6.rs:
