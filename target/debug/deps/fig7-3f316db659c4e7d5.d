/root/repo/target/debug/deps/fig7-3f316db659c4e7d5.d: crates/ebs-experiments/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-3f316db659c4e7d5.rmeta: crates/ebs-experiments/src/bin/fig7.rs Cargo.toml

crates/ebs-experiments/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
