/root/repo/target/debug/deps/cache_policies-8b9534e3956575a4.d: crates/bench/benches/cache_policies.rs

/root/repo/target/debug/deps/libcache_policies-8b9534e3956575a4.rmeta: crates/bench/benches/cache_policies.rs

crates/bench/benches/cache_policies.rs:
