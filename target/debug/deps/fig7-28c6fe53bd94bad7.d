/root/repo/target/debug/deps/fig7-28c6fe53bd94bad7.d: crates/ebs-experiments/src/bin/fig7.rs

/root/repo/target/debug/deps/libfig7-28c6fe53bd94bad7.rmeta: crates/ebs-experiments/src/bin/fig7.rs

crates/ebs-experiments/src/bin/fig7.rs:
