/root/repo/target/debug/deps/ebs_throttle-8dfe934793148582.d: crates/ebs-throttle/src/lib.rs crates/ebs-throttle/src/lending.rs crates/ebs-throttle/src/predictive.rs crates/ebs-throttle/src/rar.rs crates/ebs-throttle/src/reduction.rs crates/ebs-throttle/src/scenario.rs Cargo.toml

/root/repo/target/debug/deps/libebs_throttle-8dfe934793148582.rmeta: crates/ebs-throttle/src/lib.rs crates/ebs-throttle/src/lending.rs crates/ebs-throttle/src/predictive.rs crates/ebs-throttle/src/rar.rs crates/ebs-throttle/src/reduction.rs crates/ebs-throttle/src/scenario.rs Cargo.toml

crates/ebs-throttle/src/lib.rs:
crates/ebs-throttle/src/lending.rs:
crates/ebs-throttle/src/predictive.rs:
crates/ebs-throttle/src/rar.rs:
crates/ebs-throttle/src/reduction.rs:
crates/ebs-throttle/src/scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
