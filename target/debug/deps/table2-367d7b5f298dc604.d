/root/repo/target/debug/deps/table2-367d7b5f298dc604.d: crates/ebs-experiments/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-367d7b5f298dc604.rmeta: crates/ebs-experiments/src/bin/table2.rs

crates/ebs-experiments/src/bin/table2.rs:
