/root/repo/target/debug/deps/paper_shapes-4bd92f86525e37fc.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/libpaper_shapes-4bd92f86525e37fc.rmeta: tests/paper_shapes.rs

tests/paper_shapes.rs:
