/root/repo/target/debug/deps/ebs_bench-7f853245a1ae596d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libebs_bench-7f853245a1ae596d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
