/root/repo/target/debug/deps/ebs_core-15b7b546b26291c9.d: crates/ebs-core/src/lib.rs crates/ebs-core/src/apps.rs crates/ebs-core/src/error.rs crates/ebs-core/src/ids.rs crates/ebs-core/src/io.rs crates/ebs-core/src/metric.rs crates/ebs-core/src/parallel.rs crates/ebs-core/src/rng.rs crates/ebs-core/src/spec.rs crates/ebs-core/src/time.rs crates/ebs-core/src/topology.rs crates/ebs-core/src/trace.rs crates/ebs-core/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libebs_core-15b7b546b26291c9.rmeta: crates/ebs-core/src/lib.rs crates/ebs-core/src/apps.rs crates/ebs-core/src/error.rs crates/ebs-core/src/ids.rs crates/ebs-core/src/io.rs crates/ebs-core/src/metric.rs crates/ebs-core/src/parallel.rs crates/ebs-core/src/rng.rs crates/ebs-core/src/spec.rs crates/ebs-core/src/time.rs crates/ebs-core/src/topology.rs crates/ebs-core/src/trace.rs crates/ebs-core/src/units.rs Cargo.toml

crates/ebs-core/src/lib.rs:
crates/ebs-core/src/apps.rs:
crates/ebs-core/src/error.rs:
crates/ebs-core/src/ids.rs:
crates/ebs-core/src/io.rs:
crates/ebs-core/src/metric.rs:
crates/ebs-core/src/parallel.rs:
crates/ebs-core/src/rng.rs:
crates/ebs-core/src/spec.rs:
crates/ebs-core/src/time.rs:
crates/ebs-core/src/topology.rs:
crates/ebs-core/src/trace.rs:
crates/ebs-core/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
