/root/repo/target/debug/deps/ebs_analysis-4c86f844596c9d0a.d: crates/ebs-analysis/src/lib.rs crates/ebs-analysis/src/aggregate.rs crates/ebs-analysis/src/ccr.rs crates/ebs-analysis/src/cdf.rs crates/ebs-analysis/src/cov.rs crates/ebs-analysis/src/gini.rs crates/ebs-analysis/src/histogram.rs crates/ebs-analysis/src/mse.rs crates/ebs-analysis/src/p2a.rs crates/ebs-analysis/src/quantile.rs crates/ebs-analysis/src/table.rs crates/ebs-analysis/src/timeseries.rs crates/ebs-analysis/src/wr_ratio.rs Cargo.toml

/root/repo/target/debug/deps/libebs_analysis-4c86f844596c9d0a.rmeta: crates/ebs-analysis/src/lib.rs crates/ebs-analysis/src/aggregate.rs crates/ebs-analysis/src/ccr.rs crates/ebs-analysis/src/cdf.rs crates/ebs-analysis/src/cov.rs crates/ebs-analysis/src/gini.rs crates/ebs-analysis/src/histogram.rs crates/ebs-analysis/src/mse.rs crates/ebs-analysis/src/p2a.rs crates/ebs-analysis/src/quantile.rs crates/ebs-analysis/src/table.rs crates/ebs-analysis/src/timeseries.rs crates/ebs-analysis/src/wr_ratio.rs Cargo.toml

crates/ebs-analysis/src/lib.rs:
crates/ebs-analysis/src/aggregate.rs:
crates/ebs-analysis/src/ccr.rs:
crates/ebs-analysis/src/cdf.rs:
crates/ebs-analysis/src/cov.rs:
crates/ebs-analysis/src/gini.rs:
crates/ebs-analysis/src/histogram.rs:
crates/ebs-analysis/src/mse.rs:
crates/ebs-analysis/src/p2a.rs:
crates/ebs-analysis/src/quantile.rs:
crates/ebs-analysis/src/table.rs:
crates/ebs-analysis/src/timeseries.rs:
crates/ebs-analysis/src/wr_ratio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
