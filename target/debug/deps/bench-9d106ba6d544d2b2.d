/root/repo/target/debug/deps/bench-9d106ba6d544d2b2.d: crates/bench/src/bin/bench.rs

/root/repo/target/debug/deps/bench-9d106ba6d544d2b2: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
