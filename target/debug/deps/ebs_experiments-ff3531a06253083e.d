/root/repo/target/debug/deps/ebs_experiments-ff3531a06253083e.d: crates/ebs-experiments/src/lib.rs crates/ebs-experiments/src/ablations.rs crates/ebs-experiments/src/driver.rs crates/ebs-experiments/src/extensions.rs crates/ebs-experiments/src/fig2.rs crates/ebs-experiments/src/fig3.rs crates/ebs-experiments/src/fig4.rs crates/ebs-experiments/src/fig5.rs crates/ebs-experiments/src/fig6.rs crates/ebs-experiments/src/fig7.rs crates/ebs-experiments/src/scenario.rs crates/ebs-experiments/src/table2.rs crates/ebs-experiments/src/table3.rs crates/ebs-experiments/src/table4.rs Cargo.toml

/root/repo/target/debug/deps/libebs_experiments-ff3531a06253083e.rmeta: crates/ebs-experiments/src/lib.rs crates/ebs-experiments/src/ablations.rs crates/ebs-experiments/src/driver.rs crates/ebs-experiments/src/extensions.rs crates/ebs-experiments/src/fig2.rs crates/ebs-experiments/src/fig3.rs crates/ebs-experiments/src/fig4.rs crates/ebs-experiments/src/fig5.rs crates/ebs-experiments/src/fig6.rs crates/ebs-experiments/src/fig7.rs crates/ebs-experiments/src/scenario.rs crates/ebs-experiments/src/table2.rs crates/ebs-experiments/src/table3.rs crates/ebs-experiments/src/table4.rs Cargo.toml

crates/ebs-experiments/src/lib.rs:
crates/ebs-experiments/src/ablations.rs:
crates/ebs-experiments/src/driver.rs:
crates/ebs-experiments/src/extensions.rs:
crates/ebs-experiments/src/fig2.rs:
crates/ebs-experiments/src/fig3.rs:
crates/ebs-experiments/src/fig4.rs:
crates/ebs-experiments/src/fig5.rs:
crates/ebs-experiments/src/fig6.rs:
crates/ebs-experiments/src/fig7.rs:
crates/ebs-experiments/src/scenario.rs:
crates/ebs-experiments/src/table2.rs:
crates/ebs-experiments/src/table3.rs:
crates/ebs-experiments/src/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
