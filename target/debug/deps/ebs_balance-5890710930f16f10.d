/root/repo/target/debug/deps/ebs_balance-5890710930f16f10.d: crates/ebs-balance/src/lib.rs crates/ebs-balance/src/bs_balancer.rs crates/ebs-balance/src/dispatch.rs crates/ebs-balance/src/importer.rs crates/ebs-balance/src/migration.rs crates/ebs-balance/src/read_write.rs crates/ebs-balance/src/wt_rebind.rs

/root/repo/target/debug/deps/libebs_balance-5890710930f16f10.rlib: crates/ebs-balance/src/lib.rs crates/ebs-balance/src/bs_balancer.rs crates/ebs-balance/src/dispatch.rs crates/ebs-balance/src/importer.rs crates/ebs-balance/src/migration.rs crates/ebs-balance/src/read_write.rs crates/ebs-balance/src/wt_rebind.rs

/root/repo/target/debug/deps/libebs_balance-5890710930f16f10.rmeta: crates/ebs-balance/src/lib.rs crates/ebs-balance/src/bs_balancer.rs crates/ebs-balance/src/dispatch.rs crates/ebs-balance/src/importer.rs crates/ebs-balance/src/migration.rs crates/ebs-balance/src/read_write.rs crates/ebs-balance/src/wt_rebind.rs

crates/ebs-balance/src/lib.rs:
crates/ebs-balance/src/bs_balancer.rs:
crates/ebs-balance/src/dispatch.rs:
crates/ebs-balance/src/importer.rs:
crates/ebs-balance/src/migration.rs:
crates/ebs-balance/src/read_write.rs:
crates/ebs-balance/src/wt_rebind.rs:
