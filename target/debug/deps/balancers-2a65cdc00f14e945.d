/root/repo/target/debug/deps/balancers-2a65cdc00f14e945.d: crates/bench/benches/balancers.rs Cargo.toml

/root/repo/target/debug/deps/libbalancers-2a65cdc00f14e945.rmeta: crates/bench/benches/balancers.rs Cargo.toml

crates/bench/benches/balancers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
