/root/repo/target/debug/deps/ebs_predict-2688d6234b039e61.d: crates/ebs-predict/src/lib.rs crates/ebs-predict/src/arima.rs crates/ebs-predict/src/attention.rs crates/ebs-predict/src/eval.rs crates/ebs-predict/src/gbdt.rs crates/ebs-predict/src/linear.rs crates/ebs-predict/src/matrix.rs

/root/repo/target/debug/deps/libebs_predict-2688d6234b039e61.rlib: crates/ebs-predict/src/lib.rs crates/ebs-predict/src/arima.rs crates/ebs-predict/src/attention.rs crates/ebs-predict/src/eval.rs crates/ebs-predict/src/gbdt.rs crates/ebs-predict/src/linear.rs crates/ebs-predict/src/matrix.rs

/root/repo/target/debug/deps/libebs_predict-2688d6234b039e61.rmeta: crates/ebs-predict/src/lib.rs crates/ebs-predict/src/arima.rs crates/ebs-predict/src/attention.rs crates/ebs-predict/src/eval.rs crates/ebs-predict/src/gbdt.rs crates/ebs-predict/src/linear.rs crates/ebs-predict/src/matrix.rs

crates/ebs-predict/src/lib.rs:
crates/ebs-predict/src/arima.rs:
crates/ebs-predict/src/attention.rs:
crates/ebs-predict/src/eval.rs:
crates/ebs-predict/src/gbdt.rs:
crates/ebs-predict/src/linear.rs:
crates/ebs-predict/src/matrix.rs:
