/root/repo/target/debug/deps/ebs_criterion_shim-7c852461d49a08b7.d: crates/criterion-shim/src/lib.rs

/root/repo/target/debug/deps/ebs_criterion_shim-7c852461d49a08b7: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
