/root/repo/target/debug/deps/ebs_predict-9b516a89a8f3b9e0.d: crates/ebs-predict/src/lib.rs crates/ebs-predict/src/arima.rs crates/ebs-predict/src/attention.rs crates/ebs-predict/src/eval.rs crates/ebs-predict/src/gbdt.rs crates/ebs-predict/src/linear.rs crates/ebs-predict/src/matrix.rs Cargo.toml

/root/repo/target/debug/deps/libebs_predict-9b516a89a8f3b9e0.rmeta: crates/ebs-predict/src/lib.rs crates/ebs-predict/src/arima.rs crates/ebs-predict/src/attention.rs crates/ebs-predict/src/eval.rs crates/ebs-predict/src/gbdt.rs crates/ebs-predict/src/linear.rs crates/ebs-predict/src/matrix.rs Cargo.toml

crates/ebs-predict/src/lib.rs:
crates/ebs-predict/src/arima.rs:
crates/ebs-predict/src/attention.rs:
crates/ebs-predict/src/eval.rs:
crates/ebs-predict/src/gbdt.rs:
crates/ebs-predict/src/linear.rs:
crates/ebs-predict/src/matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
