/root/repo/target/debug/deps/fig7-8d4c72a423ab00e0.d: crates/ebs-experiments/src/bin/fig7.rs

/root/repo/target/debug/deps/libfig7-8d4c72a423ab00e0.rmeta: crates/ebs-experiments/src/bin/fig7.rs

crates/ebs-experiments/src/bin/fig7.rs:
