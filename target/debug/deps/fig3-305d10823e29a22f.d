/root/repo/target/debug/deps/fig3-305d10823e29a22f.d: crates/ebs-experiments/src/bin/fig3.rs

/root/repo/target/debug/deps/libfig3-305d10823e29a22f.rmeta: crates/ebs-experiments/src/bin/fig3.rs

crates/ebs-experiments/src/bin/fig3.rs:
