/root/repo/target/debug/deps/ebs_predict-e1b92a68e8c099ed.d: crates/ebs-predict/src/lib.rs crates/ebs-predict/src/arima.rs crates/ebs-predict/src/attention.rs crates/ebs-predict/src/eval.rs crates/ebs-predict/src/gbdt.rs crates/ebs-predict/src/linear.rs crates/ebs-predict/src/matrix.rs Cargo.toml

/root/repo/target/debug/deps/libebs_predict-e1b92a68e8c099ed.rmeta: crates/ebs-predict/src/lib.rs crates/ebs-predict/src/arima.rs crates/ebs-predict/src/attention.rs crates/ebs-predict/src/eval.rs crates/ebs-predict/src/gbdt.rs crates/ebs-predict/src/linear.rs crates/ebs-predict/src/matrix.rs Cargo.toml

crates/ebs-predict/src/lib.rs:
crates/ebs-predict/src/arima.rs:
crates/ebs-predict/src/attention.rs:
crates/ebs-predict/src/eval.rs:
crates/ebs-predict/src/gbdt.rs:
crates/ebs-predict/src/linear.rs:
crates/ebs-predict/src/matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
