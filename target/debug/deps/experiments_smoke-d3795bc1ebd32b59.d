/root/repo/target/debug/deps/experiments_smoke-d3795bc1ebd32b59.d: tests/experiments_smoke.rs

/root/repo/target/debug/deps/libexperiments_smoke-d3795bc1ebd32b59.rmeta: tests/experiments_smoke.rs

tests/experiments_smoke.rs:
