/root/repo/target/debug/deps/failure_injection-06aedea5c183b38b.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-06aedea5c183b38b: tests/failure_injection.rs

tests/failure_injection.rs:
