/root/repo/target/debug/examples/quickstart-6d6def12e096c484.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-6d6def12e096c484.rmeta: examples/quickstart.rs

examples/quickstart.rs:
