/root/repo/target/debug/examples/trace_replay-6673973b38121e72.d: examples/trace_replay.rs

/root/repo/target/debug/examples/libtrace_replay-6673973b38121e72.rmeta: examples/trace_replay.rs

examples/trace_replay.rs:
