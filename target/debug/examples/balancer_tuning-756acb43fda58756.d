/root/repo/target/debug/examples/balancer_tuning-756acb43fda58756.d: examples/balancer_tuning.rs

/root/repo/target/debug/examples/libbalancer_tuning-756acb43fda58756.rmeta: examples/balancer_tuning.rs

examples/balancer_tuning.rs:
