/root/repo/target/debug/examples/cache_study-4f02a99e83ae3414.d: examples/cache_study.rs Cargo.toml

/root/repo/target/debug/examples/libcache_study-4f02a99e83ae3414.rmeta: examples/cache_study.rs Cargo.toml

examples/cache_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
