/root/repo/target/debug/examples/trace_replay-8c383e48e1377a2f.d: examples/trace_replay.rs

/root/repo/target/debug/examples/trace_replay-8c383e48e1377a2f: examples/trace_replay.rs

examples/trace_replay.rs:
