/root/repo/target/debug/examples/balancer_tuning-5f25c5db8f3fb0f6.d: examples/balancer_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libbalancer_tuning-5f25c5db8f3fb0f6.rmeta: examples/balancer_tuning.rs Cargo.toml

examples/balancer_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
