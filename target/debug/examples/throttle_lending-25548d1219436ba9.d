/root/repo/target/debug/examples/throttle_lending-25548d1219436ba9.d: examples/throttle_lending.rs

/root/repo/target/debug/examples/libthrottle_lending-25548d1219436ba9.rmeta: examples/throttle_lending.rs

examples/throttle_lending.rs:
