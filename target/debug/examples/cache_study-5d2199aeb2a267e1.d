/root/repo/target/debug/examples/cache_study-5d2199aeb2a267e1.d: examples/cache_study.rs

/root/repo/target/debug/examples/libcache_study-5d2199aeb2a267e1.rmeta: examples/cache_study.rs

examples/cache_study.rs:
