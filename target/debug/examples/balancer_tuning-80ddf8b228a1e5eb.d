/root/repo/target/debug/examples/balancer_tuning-80ddf8b228a1e5eb.d: examples/balancer_tuning.rs

/root/repo/target/debug/examples/balancer_tuning-80ddf8b228a1e5eb: examples/balancer_tuning.rs

examples/balancer_tuning.rs:
