/root/repo/target/debug/examples/throttle_lending-2a9729c84c797648.d: examples/throttle_lending.rs Cargo.toml

/root/repo/target/debug/examples/libthrottle_lending-2a9729c84c797648.rmeta: examples/throttle_lending.rs Cargo.toml

examples/throttle_lending.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
