/root/repo/target/debug/examples/cache_study-022fe945ca869b53.d: examples/cache_study.rs

/root/repo/target/debug/examples/cache_study-022fe945ca869b53: examples/cache_study.rs

examples/cache_study.rs:
