/root/repo/target/debug/examples/throttle_lending-7de320c0b68fd2be.d: examples/throttle_lending.rs

/root/repo/target/debug/examples/throttle_lending-7de320c0b68fd2be: examples/throttle_lending.rs

examples/throttle_lending.rs:
