/root/repo/target/debug/examples/quickstart-4f9f170397fbfdcb.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4f9f170397fbfdcb: examples/quickstart.rs

examples/quickstart.rs:
