//! Failure-injection and degenerate-input coverage: the library must fail
//! loudly on malformed input and degrade gracefully on empty input — never
//! panic, never fabricate numbers.

use ebs::core::ids::VdId;
use ebs::core::io::{IoEvent, Op};
use ebs::stack::sim::{StackConfig, StackSim};
use ebs::workload::{generate, WorkloadConfig};

#[test]
fn stack_rejects_out_of_range_offsets() {
    let ds = generate(&WorkloadConfig::quick(500)).unwrap();
    let capacity = ds.fleet.vds[VdId(0)].spec.capacity_bytes;
    let rogue = IoEvent {
        t_us: 0,
        vd: VdId(0),
        qp: ds.fleet.vds[VdId(0)].qps().next().unwrap(),
        op: Op::Write,
        size: 4096,
        offset: capacity + (1 << 30), // far past the disk
    };
    let mut sim = StackSim::new(&ds.fleet, StackConfig::default());
    let err = sim.run(&[rogue]).unwrap_err();
    assert!(err.to_string().contains("unknown entity"), "{err}");
}

#[test]
fn stack_rejects_unsorted_streams_before_doing_work() {
    let ds = generate(&WorkloadConfig::quick(501)).unwrap();
    let mut events = ds.events.clone();
    let last = events.len() - 1;
    events.swap(0, last);
    let mut sim = StackSim::new(&ds.fleet, StackConfig::default());
    assert!(sim.run(&events).is_err());
}

#[test]
fn empty_event_stream_yields_empty_traces() {
    let ds = generate(&WorkloadConfig::quick(502)).unwrap();
    let mut sim = StackSim::new(&ds.fleet, StackConfig::default());
    let out = sim.run(&[]).unwrap();
    assert!(out.traces.is_empty());
    assert_eq!(out.stats.ios, 0);
    assert_eq!(out.stats.mean_latency_us, 0.0);
}

#[test]
fn analyses_handle_empty_and_degenerate_inputs() {
    assert_eq!(ebs::analysis::ccr(&[], 0.01), None);
    assert_eq!(ebs::analysis::p2a(&[]), None);
    assert_eq!(ebs::analysis::normalized_cov(&[0.0, 0.0]), None);
    assert_eq!(ebs::analysis::gini(&[]), None);
    assert_eq!(ebs::analysis::wr_ratio(0.0, 0.0), None);
    assert_eq!(ebs::analysis::median(&[]), None);
    assert_eq!(ebs::analysis::mse(&[1.0], &[1.0, 2.0]), None);
}

#[test]
fn predictors_survive_pathological_series() {
    use ebs::predict::eval::Predictor;
    let nasty: Vec<Vec<f64>> = vec![
        vec![],
        vec![0.0],
        vec![0.0; 50],
        vec![1e15; 30],
        (0..40)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1e12 })
            .collect(),
    ];
    for series in &nasty {
        let mut models: Vec<Box<dyn Predictor>> = vec![
            Box::new(ebs::predict::LinearFit::default()),
            Box::new(ebs::predict::Arima::default()),
            Box::new(ebs::predict::Gbdt::default()),
            Box::new(ebs::predict::AttentionRegressor::default()),
        ];
        for m in &mut models {
            m.fit(series);
            let p = m.predict_next(series);
            assert!(
                p.is_finite() && p >= 0.0,
                "{} on {:?}…",
                m.name(),
                series.first()
            );
        }
    }
}

#[test]
fn bad_workload_configs_are_rejected_not_misgenerated() {
    let mut c = WorkloadConfig::quick(1);
    c.vms_per_dc = 0;
    assert!(generate(&c).is_err());

    let mut c = WorkloadConfig::quick(1);
    c.compute_tick_secs = -1.0;
    assert!(generate(&c).is_err());

    let mut c = WorkloadConfig::quick(1);
    c.dc_count = 3; // dc_skew only has one entry in quick()
    assert!(generate(&c).is_err());
}

#[test]
fn csv_import_rejects_garbage() {
    use ebs::workload::export::read_events_csv;
    use std::io::BufReader;
    for bad in [
        "t_us,vd,qp,op,size,offset\nnot,a,number,R,1,2\n",
        "t_us,vd,qp,op,size,offset\n1,0,0,Q,4096,0\n",
        "t_us,vd,qp,op,size,offset\n1,0,0,R\n",
    ] {
        assert!(
            read_events_csv(BufReader::new(bad.as_bytes())).is_err(),
            "{bad:?}"
        );
    }
}

/// Bytes of a saved quick-scale store, for corruption experiments.
fn saved_store_bytes() -> Vec<u8> {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ebs-failinj-{}.ebs", std::process::id()));
    let ds = generate(&WorkloadConfig::quick(503)).unwrap();
    ds.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    bytes
}

/// Write `bytes` to a fresh temp file, run `Dataset::load` on it, clean up.
fn load_bytes(
    bytes: &[u8],
    tag: &str,
) -> Result<ebs::workload::Dataset, ebs::core::error::EbsError> {
    let path = std::env::temp_dir().join(format!("ebs-failinj-{}-{tag}.ebs", std::process::id()));
    std::fs::write(&path, bytes).unwrap();
    let out = ebs::workload::Dataset::load(&path);
    let _ = std::fs::remove_file(&path);
    out
}

#[test]
fn store_truncated_at_any_sampled_prefix_is_a_typed_error_not_a_panic() {
    use ebs::core::error::EbsError;
    let bytes = saved_store_bytes();
    // Sample ~60 cut points across the file, plus the structural boundaries
    // (mid-magic, mid-version, mid-frame, first payload byte).
    let mut cuts = vec![0, 4, 10, 12, 15, 22];
    cuts.extend((1..60).map(|i| i * bytes.len() / 60));
    for cut in cuts {
        let cut = cut.min(bytes.len() - 1);
        let err = load_bytes(&bytes[..cut], &format!("cut{cut}"))
            .expect_err("a strict prefix must never load");
        assert!(
            matches!(err, EbsError::Truncated(_) | EbsError::CorruptStore(_)),
            "cut at {cut}: unexpected error class {err}"
        );
    }
}

#[test]
fn store_flipped_payload_byte_is_a_checksum_mismatch() {
    use ebs::core::error::EbsError;
    use ebs::store::{FRAME_LEN, HEADER_LEN};
    let mut bytes = saved_store_bytes();
    let at = HEADER_LEN + FRAME_LEN + 3; // inside the first chunk's payload
    bytes[at] ^= 0x20;
    let err = load_bytes(&bytes, "flip").expect_err("corrupted payload must not load");
    assert!(matches!(err, EbsError::ChecksumMismatch(_)), "{err}");
}

#[test]
fn store_wrong_magic_is_corrupt_store() {
    use ebs::core::error::EbsError;
    let mut bytes = saved_store_bytes();
    bytes[..8].copy_from_slice(b"NOTEBSST");
    let err = load_bytes(&bytes, "magic").expect_err("wrong magic must not load");
    assert!(matches!(err, EbsError::CorruptStore(_)), "{err}");
}

#[test]
fn store_future_version_is_version_skew() {
    use ebs::core::error::EbsError;
    let mut bytes = saved_store_bytes();
    bytes[8..12].copy_from_slice(&(ebs::store::VERSION + 7).to_le_bytes());
    let err = load_bytes(&bytes, "version").expect_err("future version must not load");
    assert!(matches!(err, EbsError::VersionSkew(_)), "{err}");
}

/// One real v2 EVENTS payload (a few hundred events), for decoder fuzzing
/// below the frame-seal layer — the corruption the seal cannot catch.
fn v2_events_payload() -> Vec<u8> {
    use ebs::store::EventScratch;
    let ds = generate(&WorkloadConfig::quick(504)).unwrap();
    let slice = &ds.events[..ds.events.len().min(700)];
    let mut scratch = EventScratch::new();
    let (payload, _) = ebs::store::columns::encode_events_v2(slice, &mut scratch).unwrap();
    payload
}

#[test]
fn v2_event_decoder_rejects_truncation_at_every_length() {
    use ebs::store::decode_events;
    let payload = v2_events_payload();
    assert!(!decode_events(2, &payload)
        .expect("intact payload decodes")
        .is_empty());
    for cut in 0..payload.len() {
        // Every strict prefix starves some column of bytes: a typed error,
        // never a panic, never a silently shortened batch.
        assert!(
            decode_events(2, &payload[..cut]).is_err(),
            "prefix of {cut} bytes decoded"
        );
    }
}

#[test]
fn v2_event_decoder_survives_every_single_byte_flip() {
    use ebs::store::{decode_events, MAX_CHUNK_EVENTS};
    let payload = v2_events_payload();
    for at in 0..payload.len() {
        for flip in [0x01u8, 0x80] {
            let mut corrupt = payload.clone();
            corrupt[at] ^= flip;
            // The frame seal catches these in a real container; fed straight
            // to the decoder they must still produce a typed error or a
            // well-formed batch — never a panic or an unbounded allocation.
            if let Ok(events) = decode_events(2, &corrupt) {
                assert!(
                    events.len() <= MAX_CHUNK_EVENTS,
                    "flip at {at} over-allocated"
                );
            }
        }
    }
}

#[test]
fn v2_column_shift_corruptions_are_typed_errors() {
    use ebs::core::error::EbsError;
    use ebs::store::codec::{column_tag, decode_column_into, encode_column, encode_group_varint};
    use ebs::store::{ByteReader, ByteWriter};

    // A 12-bit-aligned column carries its alignment in the shift byte.
    let vals: Vec<u64> = (1..200u64).map(|v| v << 12).collect();
    let mut w = ByteWriter::new();
    encode_column(&mut w, &vals);
    let bytes = w.into_bytes();
    assert_eq!(bytes[1], 12, "encoder should detect the 12-bit alignment");

    // Shift byte pushed out of range → CorruptStore.
    let mut wide = bytes;
    wide[1] = 64;
    let mut out = Vec::new();
    let err = decode_column_into(&mut ByteReader::new(&wide, "shift"), vals.len(), &mut out)
        .expect_err("shift 64 must not decode");
    assert!(matches!(err, EbsError::CorruptStore(_)), "{err}");

    // A nonzero shift over an all-even body is non-canonical → CorruptStore.
    let packed: Vec<u64> = (1..100u64).map(|v| v * 2).collect();
    let mut w = ByteWriter::new();
    w.put_u8(column_tag::GROUP_VARINT);
    w.put_u8(4);
    encode_group_varint(&mut w, &packed);
    let noncanon = w.into_bytes();
    let err = decode_column_into(
        &mut ByteReader::new(&noncanon, "canon"),
        packed.len(),
        &mut out,
    )
    .expect_err("non-canonical shift must not decode");
    assert!(matches!(err, EbsError::CorruptStore(_)), "{err}");

    // An unknown codec tag → CorruptStore.
    let unknown = [9u8, 0, 1, 2, 3];
    let err = decode_column_into(&mut ByteReader::new(&unknown, "tag"), 1, &mut out)
        .expect_err("unknown tag must not decode");
    assert!(matches!(err, EbsError::CorruptStore(_)), "{err}");
}

#[test]
fn v2_series_decoder_survives_truncation_and_flips() {
    use ebs::store::{decode_series_set, encode_series_set};
    let ds = generate(&WorkloadConfig::quick(505)).unwrap();
    let payload = encode_series_set(ds.compute.ticks, ds.compute.per_qp.as_slice());
    let (ticks, series) =
        decode_series_set(2, &payload, "compute").expect("intact payload decodes");
    assert_eq!(ticks, ds.compute.ticks);
    assert_eq!(series.as_slice(), ds.compute.per_qp.as_slice());
    // Sampled strict prefixes must fail typed; sampled bit flips must fail
    // typed or decode to a well-formed set — never panic. The sparse/raw/
    // integral mode bytes all fall inside the sampled window.
    let stride = (payload.len() / 512).max(1);
    for cut in (0..payload.len()).step_by(stride) {
        assert!(
            decode_series_set(2, &payload[..cut], "compute").is_err(),
            "prefix of {cut} bytes decoded"
        );
    }
    for at in (0..payload.len()).step_by(stride) {
        let mut corrupt = payload.clone();
        corrupt[at] ^= 0x01;
        let _ = decode_series_set(2, &corrupt, "compute");
    }
}

#[test]
fn cache_simulation_of_idle_vd_reports_no_ratio() {
    use ebs::cache::simulate::{simulate, HitStats};
    use ebs::cache::LruCache;
    let mut lru = LruCache::new(16);
    let stats = simulate(&mut lru, &[]);
    assert_eq!(
        stats,
        HitStats {
            accesses: 0,
            hits: 0
        }
    );
    assert_eq!(stats.ratio(), None);
}

#[test]
fn throttle_groups_with_zero_caps_never_divide_by_zero() {
    // rar_samples guards total_cap <= 0 explicitly.
    use ebs::throttle::rar::rar_samples;
    use ebs::throttle::scenario::{GroupKind, ThrottleGroup, VdSeries};
    let g = ThrottleGroup {
        kind: GroupKind::MultiVdVm(ebs::core::ids::VmId(0)),
        members: vec![VdSeries {
            vd: VdId(0),
            read: vec![1.0],
            write: vec![1.0],
            cap: 0.0,
        }],
        ticks: 1,
    };
    assert!(rar_samples(&g).is_empty());
}
