//! Cross-crate determinism: one seed must reproduce every artifact bit-
//! for-bit — datasets, stack traces, balancer placements, lending gains.

use ebs::balance::bs_balancer::{run_balancer, BalancerConfig};
use ebs::balance::importer::ImporterSelect;
use ebs::core::ids::DcId;
use ebs::stack::sim::{StackConfig, StackSim};
use ebs::throttle::lending::{lending_gains, LendingConfig};
use ebs::throttle::scenario::{build_groups, CapDim};
use ebs::workload::{generate, WorkloadConfig};

#[test]
fn datasets_are_bitwise_reproducible() {
    let cfg = WorkloadConfig::quick(777);
    let a = generate(&cfg).unwrap();
    let b = generate(&cfg).unwrap();
    assert_eq!(a.events, b.events);
    for (x, y) in a.compute.per_qp.iter().zip(b.compute.per_qp.iter()) {
        assert_eq!(x, y);
    }
    for (x, y) in a.storage.per_seg.iter().zip(b.storage.per_seg.iter()) {
        assert_eq!(x, y);
    }
}

#[test]
fn different_seeds_produce_different_traffic() {
    let a = generate(&WorkloadConfig::quick(1)).unwrap();
    let b = generate(&WorkloadConfig::quick(2)).unwrap();
    assert_ne!(a.total_bytes(), b.total_bytes());
}

#[test]
fn stack_traces_are_reproducible() {
    let ds = generate(&WorkloadConfig::quick(778)).unwrap();
    let run = |seed| {
        let cfg = StackConfig { seed, ..StackConfig::default() };
        let mut sim = StackSim::new(&ds.fleet, cfg);
        sim.run(&ds.events).unwrap()
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.traces.records(), b.traces.records());
    // A different latency seed changes latencies but not routing.
    let c = run(10);
    assert_eq!(a.traces.len(), c.traces.len());
    assert_ne!(
        a.traces.records()[0].lat.total_us(),
        c.traces.records()[0].lat.total_us()
    );
}

#[test]
fn balancer_runs_are_reproducible_even_with_random_importers() {
    let ds = generate(&WorkloadConfig::quick(779)).unwrap();
    let cfg = BalancerConfig { strategy: ImporterSelect::Random, ..BalancerConfig::default() };
    let a = run_balancer(&ds.fleet, &ds.storage, DcId(0), &cfg);
    let b = run_balancer(&ds.fleet, &ds.storage, DcId(0), &cfg);
    assert_eq!(a.seg_map.log(), b.seg_map.log());
    assert_eq!(a.cov_series, b.cov_series);
}

#[test]
fn lending_gains_are_reproducible() {
    let ds = generate(&WorkloadConfig::quick(780)).unwrap();
    let groups = build_groups(&ds.fleet, &ds.compute, CapDim::Throughput);
    let cfg = LendingConfig::default();
    assert_eq!(lending_gains(&groups, &cfg), lending_gains(&groups, &cfg));
}
