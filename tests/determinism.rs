//! Cross-crate determinism: one seed must reproduce every artifact bit-
//! for-bit — datasets, stack traces, balancer placements, lending gains —
//! and the parallel execution layer must never perturb any of them: the
//! same seed yields byte-identical outputs at 1, 2, and N worker threads.
//! The observability layer rides the same contract: flipping `EBS_OBS`
//! records metrics but must never move a single output byte.

use ebs::balance::bs_balancer::{run_balancer, BalancerConfig};
use ebs::balance::importer::ImporterSelect;
use ebs::balance::wt_rebind::{simulate_fleet, RebindConfig};
use ebs::core::ids::DcId;
use ebs::core::parallel::set_thread_override;
use ebs::stack::sim::{StackConfig, StackSim};
use ebs::throttle::lending::{lending_gains, LendingConfig};
use ebs::throttle::scenario::{build_groups, CapDim};
use ebs::workload::{generate, Dataset, WorkloadConfig};
use std::sync::{Mutex, OnceLock};

/// Serializes the tests that flip the process-wide thread override.
fn override_guard() -> &'static Mutex<()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD.get_or_init(|| Mutex::new(()))
}

/// Serializes the tests that flip the process-wide observability override
/// against every test that would record into the global registry while it
/// is on (i.e. any test that runs a simulator). Lock ordering: obs guard
/// first, then the thread-override guard, never the reverse.
fn obs_guard() -> &'static Mutex<()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD.get_or_init(|| Mutex::new(()))
}

/// Run `f` at 1, 2, and N(=8) worker threads and assert all three results
/// are identical. The 1-thread run takes the pure serial path, so this
/// pins "parallel == serial" for every seed it is called with.
fn assert_thread_count_invariant<T, F>(f: F) -> T
where
    T: PartialEq + std::fmt::Debug,
    F: Fn() -> T,
{
    let _guard = override_guard().lock().unwrap();
    set_thread_override(Some(1));
    let serial = f();
    for threads in [2, 8] {
        set_thread_override(Some(threads));
        let parallel = f();
        assert_eq!(serial, parallel, "output diverged at {threads} threads");
    }
    set_thread_override(None);
    serial
}

/// Datasets compared field by field (fleet topology is seed-determined
/// before any parallel fan-out, so events + metric series are the parts
/// the parallel generator could plausibly perturb).
fn assert_same_dataset(a: &Dataset, b: &Dataset) {
    assert_eq!(a.events, b.events);
    for (x, y) in a.compute.per_qp.iter().zip(b.compute.per_qp.iter()) {
        assert_eq!(x, y);
    }
    for (x, y) in a.storage.per_seg.iter().zip(b.storage.per_seg.iter()) {
        assert_eq!(x, y);
    }
}

#[test]
fn datasets_are_bitwise_reproducible() {
    let cfg = WorkloadConfig::quick(777);
    let a = generate(&cfg).unwrap();
    let b = generate(&cfg).unwrap();
    assert_eq!(a.events, b.events);
    for (x, y) in a.compute.per_qp.iter().zip(b.compute.per_qp.iter()) {
        assert_eq!(x, y);
    }
    for (x, y) in a.storage.per_seg.iter().zip(b.storage.per_seg.iter()) {
        assert_eq!(x, y);
    }
}

#[test]
fn different_seeds_produce_different_traffic() {
    let a = generate(&WorkloadConfig::quick(1)).unwrap();
    let b = generate(&WorkloadConfig::quick(2)).unwrap();
    assert_ne!(a.total_bytes(), b.total_bytes());
}

#[test]
fn stack_traces_are_reproducible() {
    let ds = generate(&WorkloadConfig::quick(778)).unwrap();
    let run = |seed| {
        let cfg = StackConfig {
            seed,
            ..StackConfig::default()
        };
        let mut sim = StackSim::new(&ds.fleet, cfg);
        sim.run(&ds.events).unwrap()
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.traces.records(), b.traces.records());
    // A different latency seed changes latencies but not routing.
    let c = run(10);
    assert_eq!(a.traces.len(), c.traces.len());
    assert_ne!(
        a.traces.records()[0].lat.total_us(),
        c.traces.records()[0].lat.total_us()
    );
}

#[test]
fn balancer_runs_are_reproducible_even_with_random_importers() {
    let ds = generate(&WorkloadConfig::quick(779)).unwrap();
    let cfg = BalancerConfig {
        strategy: ImporterSelect::Random,
        ..BalancerConfig::default()
    };
    let a = run_balancer(&ds.fleet, &ds.storage, DcId(0), &cfg);
    let b = run_balancer(&ds.fleet, &ds.storage, DcId(0), &cfg);
    assert_eq!(a.seg_map.log(), b.seg_map.log());
    assert_eq!(a.cov_series, b.cov_series);
}

#[test]
fn lending_gains_are_reproducible() {
    let ds = generate(&WorkloadConfig::quick(780)).unwrap();
    let groups = build_groups(&ds.fleet, &ds.compute, CapDim::Throughput);
    let cfg = LendingConfig::default();
    assert_eq!(lending_gains(&groups, &cfg), lending_gains(&groups, &cfg));
}

/// The seeds the parallel == serial contract is pinned for: the default
/// workload seed, the experiment harness seed, and an arbitrary third.
const PARALLEL_SEEDS: [u64; 3] = [0xEB5_5EED, ebs::experiments::EXPERIMENT_SEED, 424_242];

#[test]
fn parallel_generation_matches_serial_for_every_seed() {
    let _guard = override_guard().lock().unwrap();
    for seed in PARALLEL_SEEDS {
        let cfg = WorkloadConfig::quick(seed);
        set_thread_override(Some(1));
        let serial = generate(&cfg).unwrap();
        for threads in [2, 8] {
            set_thread_override(Some(threads));
            let parallel = generate(&cfg).unwrap();
            assert_same_dataset(&serial, &parallel);
        }
        set_thread_override(None);
    }
}

#[test]
fn parallel_rebind_sweep_matches_serial() {
    for seed in PARALLEL_SEEDS {
        let ds = generate(&WorkloadConfig::quick(seed)).unwrap();
        assert_thread_count_invariant(|| {
            simulate_fleet(&ds.fleet, &ds.events, &RebindConfig::default())
        });
    }
}

#[test]
fn parallel_cache_sweep_matches_serial() {
    use ebs::experiments::fig7;
    for seed in PARALLEL_SEEDS {
        let ds = generate(&WorkloadConfig::quick(seed)).unwrap();
        let idx = ds.index();
        let rows = assert_thread_count_invariant(|| {
            fig7::panel_a(idx)
                .into_iter()
                .map(|r| (r.algo.label(), r.block_size, r.hit_ratio.p50, r.hit_ratio.n))
                .collect::<Vec<_>>()
        });
        assert!(
            !rows.is_empty(),
            "panel A produced no rows for seed {seed:#x}"
        );
    }
}

#[test]
fn parallel_experiment_driver_matches_serial() {
    use ebs::experiments::{dataset, driver, Scale};
    let ds = dataset(Scale::Quick);
    let sections = assert_thread_count_invariant(|| driver::run_all(&ds));
    assert_eq!(sections.len(), 11, "every section must render");
}

#[test]
fn obs_toggle_never_changes_driver_output() {
    use ebs::experiments::{dataset, driver, Scale};
    let _guard = obs_guard().lock().unwrap();
    let _threads = override_guard().lock().unwrap();
    let ds = dataset(Scale::Quick);
    ebs::obs::set_obs_override(Some(false));
    let off = driver::run_all(&ds);
    ebs::obs::set_obs_override(Some(true));
    ebs::obs::reset();
    let on = driver::run_all(&ds);
    let snap = ebs::obs::snapshot();
    ebs::obs::set_obs_override(None);
    assert_eq!(off, on, "EBS_OBS must not move a single output byte");
    // The run report must actually observe the simulators: at least the
    // four instrumented subsystems plus the driver itself.
    for prefix in ["stack.", "balance.", "throttle.", "cache.", "driver."] {
        assert!(
            snap.rows().iter().any(|r| r.name().starts_with(prefix)),
            "no {prefix}* metric in the run report"
        );
    }
    assert!(snap.counter("stack.sim.ios") > 0);
    assert_eq!(
        snap.counter("driver.events_processed"),
        ds.events.len() as u64
    );
}

#[test]
fn obs_metrics_are_thread_count_invariant() {
    use ebs::experiments::{dataset, driver, Scale};
    let _obs = obs_guard().lock().unwrap();
    let _threads = override_guard().lock().unwrap();
    let ds = dataset(Scale::Quick);
    ebs::obs::set_obs_override(Some(true));
    let deterministic_rows = |threads| {
        set_thread_override(Some(threads));
        ebs::obs::reset();
        driver::run_all(&ds);
        let snap = ebs::obs::snapshot();
        set_thread_override(None);
        // Wall-clock timers and the derived rate gauge legitimately vary;
        // every counter and histogram must not.
        snap.rows()
            .into_iter()
            .filter(|r| {
                matches!(
                    r,
                    ebs::obs::Row::Counter { .. } | ebs::obs::Row::Hist { .. }
                )
            })
            .collect::<Vec<_>>()
    };
    let serial = deterministic_rows(1);
    let parallel = deterministic_rows(8);
    ebs::obs::set_obs_override(None);
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "recorded metrics diverged across threads");
}

/// Replaying the canonical dataset from an ebs-store file must be
/// indistinguishable from generating it in memory: same dataset fields,
/// and byte-identical driver output at 1, 2, and 8 worker threads, with
/// observability both off and on. This is the contract that makes
/// `bin/all --trace <path>` safe to use for the gold-master runs.
#[test]
fn replay_from_store_is_byte_identical_to_generation() {
    use ebs::experiments::{dataset, dataset_or_replay, driver, Scale};
    let _obs = obs_guard().lock().unwrap();
    let _threads = override_guard().lock().unwrap();
    let path = std::env::temp_dir().join(format!("ebs-replay-{}.ebs", std::process::id()));
    let _ = std::fs::remove_file(&path);

    set_thread_override(Some(1));
    ebs::obs::set_obs_override(Some(false));
    let generated = dataset(Scale::Quick);
    let baseline = driver::run_all(&generated);
    // First call generates and saves; all later calls replay from the file.
    let saved = dataset_or_replay(Scale::Quick, &path).unwrap();
    assert_same_dataset(&generated, &saved);

    for threads in [1, 2, 8] {
        set_thread_override(Some(threads));
        let replayed = dataset_or_replay(Scale::Quick, &path).unwrap();
        assert_same_dataset(&generated, &replayed);
        assert_eq!(
            baseline,
            driver::run_all(&replayed),
            "replayed output diverged at {threads} threads, obs off"
        );
        ebs::obs::set_obs_override(Some(true));
        ebs::obs::reset();
        assert_eq!(
            baseline,
            driver::run_all(&replayed),
            "replayed output diverged at {threads} threads, obs on"
        );
        ebs::obs::set_obs_override(Some(false));
    }

    set_thread_override(None);
    ebs::obs::set_obs_override(None);
    let _ = std::fs::remove_file(&path);
}

/// The staged columnar pipeline must be indistinguishable from the
/// preserved event-at-a-time reference simulator: identical stats and
/// trace records for every seed, at 1, 2, and 8 worker threads, with
/// observability both off and on. This is the differential oracle that
/// lets the staged pipeline evolve without ever moving an output bit.
#[test]
fn staged_pipeline_matches_reference_simulator() {
    use ebs::stack::ReferenceSim;
    let _obs = obs_guard().lock().unwrap();
    let _threads = override_guard().lock().unwrap();
    for seed in PARALLEL_SEEDS {
        let ds = generate(&WorkloadConfig::quick(seed)).unwrap();
        let cfg = StackConfig::default();
        for obs_on in [false, true] {
            ebs::obs::set_obs_override(Some(obs_on));
            for threads in [1, 2, 8] {
                set_thread_override(Some(threads));
                let reference = ReferenceSim::new(&ds.fleet, cfg.clone())
                    .run(&ds.events)
                    .unwrap();
                let mut sim = StackSim::new(&ds.fleet, cfg.clone());
                let staged = sim.run(&ds.events).unwrap();
                assert_eq!(
                    reference.stats, staged.stats,
                    "stats diverged: seed={seed:#x} threads={threads} obs={obs_on}"
                );
                assert_eq!(
                    reference.traces.records(),
                    staged.traces.records(),
                    "traces diverged: seed={seed:#x} threads={threads} obs={obs_on}"
                );
            }
            set_thread_override(None);
        }
        ebs::obs::set_obs_override(None);
    }
}

/// The gold master pin: the full-scale driver with observability ON must
/// reproduce `full_run_output.txt` byte for byte (the file records
/// `bin/all`'s stdout, which joins sections with blank lines and ends with
/// the final newline `println!` appends). This is the slowest test of the
/// suite (~2 min on one core) and the one that makes "observability is
/// free" an enforced property rather than a comment.
#[test]
fn full_driver_with_obs_on_matches_gold_master() {
    use ebs::experiments::{dataset, driver, Scale};
    let _guard = obs_guard().lock().unwrap();
    let gold = std::fs::read_to_string("full_run_output.txt").expect("gold master present");
    let ds = dataset(Scale::Full);
    ebs::obs::set_obs_override(Some(true));
    let out = format!("{}\n", driver::run_all(&ds).join("\n\n"));
    ebs::obs::set_obs_override(None);
    assert_eq!(gold, out, "full-scale output moved with EBS_OBS on");
}

/// The serve gold master pin: the medium-scale control plane with all
/// four online policies must reproduce `serve_epochs_gold.jsonl` byte
/// for byte (the file records the per-epoch metrics stream of
/// `serve --medium --epoch 60 --window 5 --policies
/// rebind,lend,balance,cache`). Epoch cuts, window folds, and every
/// policy decision are pinned across versions by this file, on top of
/// the run-to-run/thread/shard invariance the ebs-serve suite asserts.
#[test]
fn serve_metrics_stream_matches_gold_master() {
    use ebs::serve::{
        serve, OnlineBalancer, OnlineCacheTuner, OnlineLender, OnlineRebinder, Policy, ServeConfig,
    };
    let gold = std::fs::read_to_string("serve_epochs_gold.jsonl").expect("gold master present");
    let ds = generate(&WorkloadConfig::medium(0xEB5_2025)).unwrap();
    let stack = StackConfig::default();
    let mut config = ServeConfig::fast_forward(60.0, 5, stack.clone()).unwrap();
    config.cache_pages = Some(4096); // bin/serve's default when `cache` is selected
    let mut policies: Vec<Box<dyn Policy>> = vec![
        Box::new(OnlineRebinder::default()),
        Box::new(OnlineLender::new(
            ebs::throttle::LendingConfig::default(),
            stack.throttle_scale,
        )),
        Box::new(OnlineBalancer::new(
            ebs::balance::bs_balancer::BalancerConfig::default(),
        )),
        Box::new(OnlineCacheTuner::new(4096)),
    ];
    let report = serve(&ds.fleet, &config, &ds.events, &mut policies).unwrap();
    assert_eq!(
        gold, report.metrics_jsonl,
        "serve per-epoch metrics moved against the gold master"
    );
}
