//! Cross-crate determinism: one seed must reproduce every artifact bit-
//! for-bit — datasets, stack traces, balancer placements, lending gains —
//! and the parallel execution layer must never perturb any of them: the
//! same seed yields byte-identical outputs at 1, 2, and N worker threads.

use ebs::balance::bs_balancer::{run_balancer, BalancerConfig};
use ebs::balance::importer::ImporterSelect;
use ebs::balance::wt_rebind::{simulate_fleet, RebindConfig};
use ebs::core::ids::DcId;
use ebs::core::parallel::set_thread_override;
use ebs::stack::sim::{StackConfig, StackSim};
use ebs::throttle::lending::{lending_gains, LendingConfig};
use ebs::throttle::scenario::{build_groups, CapDim};
use ebs::workload::{generate, Dataset, WorkloadConfig};
use std::sync::{Mutex, OnceLock};

/// Serializes the tests that flip the process-wide thread override.
fn override_guard() -> &'static Mutex<()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD.get_or_init(|| Mutex::new(()))
}

/// Run `f` at 1, 2, and N(=8) worker threads and assert all three results
/// are identical. The 1-thread run takes the pure serial path, so this
/// pins "parallel == serial" for every seed it is called with.
fn assert_thread_count_invariant<T, F>(f: F) -> T
where
    T: PartialEq + std::fmt::Debug,
    F: Fn() -> T,
{
    let _guard = override_guard().lock().unwrap();
    set_thread_override(Some(1));
    let serial = f();
    for threads in [2, 8] {
        set_thread_override(Some(threads));
        let parallel = f();
        assert_eq!(serial, parallel, "output diverged at {threads} threads");
    }
    set_thread_override(None);
    serial
}

/// Datasets compared field by field (fleet topology is seed-determined
/// before any parallel fan-out, so events + metric series are the parts
/// the parallel generator could plausibly perturb).
fn assert_same_dataset(a: &Dataset, b: &Dataset) {
    assert_eq!(a.events, b.events);
    for (x, y) in a.compute.per_qp.iter().zip(b.compute.per_qp.iter()) {
        assert_eq!(x, y);
    }
    for (x, y) in a.storage.per_seg.iter().zip(b.storage.per_seg.iter()) {
        assert_eq!(x, y);
    }
}

#[test]
fn datasets_are_bitwise_reproducible() {
    let cfg = WorkloadConfig::quick(777);
    let a = generate(&cfg).unwrap();
    let b = generate(&cfg).unwrap();
    assert_eq!(a.events, b.events);
    for (x, y) in a.compute.per_qp.iter().zip(b.compute.per_qp.iter()) {
        assert_eq!(x, y);
    }
    for (x, y) in a.storage.per_seg.iter().zip(b.storage.per_seg.iter()) {
        assert_eq!(x, y);
    }
}

#[test]
fn different_seeds_produce_different_traffic() {
    let a = generate(&WorkloadConfig::quick(1)).unwrap();
    let b = generate(&WorkloadConfig::quick(2)).unwrap();
    assert_ne!(a.total_bytes(), b.total_bytes());
}

#[test]
fn stack_traces_are_reproducible() {
    let ds = generate(&WorkloadConfig::quick(778)).unwrap();
    let run = |seed| {
        let cfg = StackConfig {
            seed,
            ..StackConfig::default()
        };
        let mut sim = StackSim::new(&ds.fleet, cfg);
        sim.run(&ds.events).unwrap()
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.traces.records(), b.traces.records());
    // A different latency seed changes latencies but not routing.
    let c = run(10);
    assert_eq!(a.traces.len(), c.traces.len());
    assert_ne!(
        a.traces.records()[0].lat.total_us(),
        c.traces.records()[0].lat.total_us()
    );
}

#[test]
fn balancer_runs_are_reproducible_even_with_random_importers() {
    let ds = generate(&WorkloadConfig::quick(779)).unwrap();
    let cfg = BalancerConfig {
        strategy: ImporterSelect::Random,
        ..BalancerConfig::default()
    };
    let a = run_balancer(&ds.fleet, &ds.storage, DcId(0), &cfg);
    let b = run_balancer(&ds.fleet, &ds.storage, DcId(0), &cfg);
    assert_eq!(a.seg_map.log(), b.seg_map.log());
    assert_eq!(a.cov_series, b.cov_series);
}

#[test]
fn lending_gains_are_reproducible() {
    let ds = generate(&WorkloadConfig::quick(780)).unwrap();
    let groups = build_groups(&ds.fleet, &ds.compute, CapDim::Throughput);
    let cfg = LendingConfig::default();
    assert_eq!(lending_gains(&groups, &cfg), lending_gains(&groups, &cfg));
}

/// The seeds the parallel == serial contract is pinned for: the default
/// workload seed, the experiment harness seed, and an arbitrary third.
const PARALLEL_SEEDS: [u64; 3] = [0xEB5_5EED, ebs::experiments::EXPERIMENT_SEED, 424_242];

#[test]
fn parallel_generation_matches_serial_for_every_seed() {
    let _guard = override_guard().lock().unwrap();
    for seed in PARALLEL_SEEDS {
        let cfg = WorkloadConfig::quick(seed);
        set_thread_override(Some(1));
        let serial = generate(&cfg).unwrap();
        for threads in [2, 8] {
            set_thread_override(Some(threads));
            let parallel = generate(&cfg).unwrap();
            assert_same_dataset(&serial, &parallel);
        }
        set_thread_override(None);
    }
}

#[test]
fn parallel_rebind_sweep_matches_serial() {
    for seed in PARALLEL_SEEDS {
        let ds = generate(&WorkloadConfig::quick(seed)).unwrap();
        assert_thread_count_invariant(|| {
            simulate_fleet(&ds.fleet, &ds.events, &RebindConfig::default())
        });
    }
}

#[test]
fn parallel_cache_sweep_matches_serial() {
    use ebs::experiments::{driver, fig7};
    for seed in PARALLEL_SEEDS {
        let ds = generate(&WorkloadConfig::quick(seed)).unwrap();
        let by_vd = driver::events_partition(&ds);
        let rows = assert_thread_count_invariant(|| {
            fig7::panel_a(&by_vd)
                .into_iter()
                .map(|r| (r.algo.label(), r.block_size, r.hit_ratio.p50, r.hit_ratio.n))
                .collect::<Vec<_>>()
        });
        assert!(
            !rows.is_empty(),
            "panel A produced no rows for seed {seed:#x}"
        );
    }
}

#[test]
fn parallel_experiment_driver_matches_serial() {
    use ebs::experiments::{dataset, driver, Scale};
    let ds = dataset(Scale::Quick);
    let sections = assert_thread_count_invariant(|| driver::run_all(&ds));
    assert_eq!(sections.len(), 11, "every section must render");
}
