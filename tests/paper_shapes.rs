//! The consolidated DESIGN.md §5 fidelity checklist, executed end-to-end
//! on the medium-scale canonical scenario. Each assertion names the paper
//! claim it guards; together they are the contract that "the shapes hold".

use ebs::experiments::*;

fn ds() -> ebs::workload::Dataset {
    dataset(Scale::Medium)
}

#[test]
fn observation_1_and_2_vm_level_skew() {
    let t3 = table3::run(&ds());
    for (i, dc) in t3.dcs.iter().enumerate() {
        let (r, w) = (t3.per_dc[i][1].0.unwrap(), t3.per_dc[i][1].1.unwrap());
        assert!(r.ccr1 > 0.166, "{dc}: VM read CCR must beat prior work");
        assert!(r.ccr1 > w.ccr1, "{dc}: read spatial skew over write");
        assert!(r.p2a50 > w.p2a50, "{dc}: read temporal skew over write");
    }
}

#[test]
fn table4_bigdata_vs_docker_contrast() {
    let rows = table4::run(&ds());
    let bd = rows
        .iter()
        .find(|r| r.app == ebs::core::AppClass::BigData)
        .unwrap();
    let max_write_share = rows.iter().map(|r| r.share.1).fold(0.0, f64::max);
    assert!(
        bd.share.1 >= max_write_share - 1e-9,
        "BigData leads write share"
    );
    let min_read_ccr = rows
        .iter()
        .filter(|r| r.ccr1.0.is_finite())
        .map(|r| r.ccr1.0)
        .fold(f64::INFINITY, f64::min);
    assert!(
        bd.ccr1.0 <= min_read_ccr + 0.12,
        "BigData among the least skewed"
    );
}

#[test]
fn section4_wt_skew_and_rebinding_limits() {
    let d = ds();
    let a = fig2::panel_a(&d);
    let (_, r, w) = a.rows[0];
    assert!(r > w, "finest-scale WT-CoV: read {r:.3} over write {w:.3}");
    let def = fig2::panel_def(&d);
    assert!(
        def.improved_frac > 0.05 && def.improved_frac < 0.95,
        "rebinding helps only some nodes: {:.2}",
        def.improved_frac
    );
}

#[test]
fn section5_headroom_and_lending() {
    let f3 = fig3::run(&ds());
    let rar = fig3::median_rar(&f3).expect("throttle events exist");
    assert!(
        rar > 0.4,
        "median RAR {rar:.3} — headroom abundant under throttle"
    );
    assert!(f3.c.mixed.0 < 0.3, "throttles are single-sided");
    assert!(f3.c.tput_over_iops_events > 1.0, "throughput caps dominate");
    let (_, _, pos, _) = f3
        .fg
        .iter()
        .find(|(p, k, _, _)| *p == 0.8 && *k == "multi-VD VM")
        .unwrap();
    assert!(
        *pos > 0.5,
        "most groups gain from lending at p=0.8: {pos:.2}"
    );
}

#[test]
fn section6_importers_and_predictors() {
    let d = ds();
    let dc = fig4::busiest_dc(&d);
    let b = fig4::panel_b(&d, dc);
    let res = |s| b.iter().find(|(x, _, _)| *x == s).unwrap().1;
    assert!(
        res(ebs::balance::ImporterSelect::Ideal)
            >= res(ebs::balance::ImporterSelect::MinTraffic) * 0.9,
        "the oracle importer must not trail the production default"
    );
    let c = fig4::panel_c(&d, dc);
    let score = |tag: &str| c.iter().find(|(n, _)| n.starts_with(tag)).unwrap().1;
    assert!(score("P2") < score("P1"), "ARIMA beats linear fit");
    assert!(
        score("P5") <= score("P4") * 1.05,
        "per-period attention beats per-epoch"
    );
}

#[test]
fn section7_hotspots_and_caches() {
    let d = ds();
    let f6 = fig6::run(&d);
    let row = &f6.rows[0];
    assert!(
        row.access_rate.p50 > row.median_lba_share * 3.0,
        "LBA hotspot exists"
    );
    assert!(row.write_dominant > 0.5, "hottest blocks write-dominant");
    assert!(
        (0.25..=0.75).contains(&row.hot_rate.p50),
        "hot rate near one half"
    );

    let f7a = fig7::panel_a(d.index());
    let p50 = |algo, bs: u64| {
        f7a.iter()
            .find(|r| r.algo == algo && r.block_size == bs)
            .unwrap()
            .hit_ratio
            .p50
    };
    use ebs::cache::simulate::Algorithm::*;
    // FIFO ≈ LRU everywhere; FrozenHot trails at 64 MiB and closes the gap
    // (with a higher floor) by 2 GiB.
    assert!((p50(Fifo, 64 << 20) - p50(Lru, 64 << 20)).abs() < 0.05);
    let small_gap = p50(Lru, 64 << 20) - p50(Frozen, 64 << 20);
    let large_gap = p50(Lru, 2048 << 20) - p50(Frozen, 2048 << 20);
    assert!(
        small_gap > 0.0,
        "FrozenHot must trail at 64 MiB (gap {small_gap:.3})"
    );
    assert!(
        large_gap < small_gap,
        "FrozenHot must close the gap at 2 GiB"
    );
}
