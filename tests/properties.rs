//! Workspace-level property tests: invariants that must hold for *any*
//! input, not just the canonical scenarios.

use ebs::analysis::{ccr, normalized_cov, p2a, quantile};
use ebs::cache::policy::CachePolicy;
use ebs::cache::{FifoCache, FrozenCache, LruCache};
use ebs::core::io::Op;
use ebs::stack::TokenBucket;
use proptest::prelude::*;

proptest! {
    #[test]
    fn ccr_is_monotone_in_fraction(
        values in prop::collection::vec(0.0f64..1e9, 2..50),
        f1 in 0.01f64..0.5,
        f2 in 0.5f64..1.0,
    ) {
        prop_assume!(values.iter().sum::<f64>() > 0.0);
        let a = ccr(&values, f1).unwrap();
        let b = ccr(&values, f2).unwrap();
        prop_assert!(b >= a - 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
    }

    #[test]
    fn normalized_cov_stays_in_unit_interval(
        values in prop::collection::vec(0.0f64..1e9, 2..40),
    ) {
        if let Some(c) = normalized_cov(&values) {
            prop_assert!((0.0..=1.0).contains(&c), "CoV {c}");
        }
    }

    #[test]
    fn p2a_at_least_one(values in prop::collection::vec(0.0f64..1e6, 1..100)) {
        if let Some(p) = p2a(&values) {
            prop_assert!(p >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in prop::collection::vec(-1e6f64..1e6, 1..60),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&values, lo).unwrap();
        let b = quantile(&values, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
    }

    #[test]
    fn lru_capacity_and_residency_invariants(
        capacity in 1usize..32,
        accesses in prop::collection::vec(0u64..64, 1..400),
    ) {
        let mut lru = LruCache::new(capacity);
        for (i, &page) in accesses.iter().enumerate() {
            lru.access(page, Op::Read);
            prop_assert!(lru.len() <= capacity, "step {i}: over capacity");
            // A page accessed twice in a row always hits the second time.
            prop_assert!(lru.access(page, Op::Read), "immediate re-access must hit");
        }
    }

    #[test]
    fn fifo_never_exceeds_capacity_and_repeats_hit_within_capacity(
        capacity in 1usize..32,
        accesses in prop::collection::vec(0u64..16, 1..300),
    ) {
        let mut fifo = FifoCache::new(capacity);
        for &page in &accesses {
            fifo.access(page, Op::Write);
            prop_assert!(fifo.len() <= capacity);
        }
        // With 16 distinct pages and capacity >= 16, everything is resident.
        if capacity >= 16 {
            for &page in &accesses {
                prop_assert!(fifo.access(page, Op::Read));
            }
        }
    }

    #[test]
    fn frozen_cache_is_exactly_its_range(
        first in 0u64..1000,
        pages in 1u64..64,
        probes in prop::collection::vec(0u64..2000, 1..100),
    ) {
        let mut frozen = FrozenCache::new(first, pages);
        for &p in &probes {
            let expect = p >= first && p < first + pages;
            prop_assert_eq!(frozen.access(p, Op::Read), expect);
        }
        prop_assert_eq!(frozen.len(), pages as usize);
    }

    #[test]
    fn token_bucket_never_admits_above_rate(
        rate in 100.0f64..1e6,
        amounts in prop::collection::vec(1.0f64..1e5, 1..200),
    ) {
        let mut bucket = TokenBucket::new(rate, rate);
        let mut t_us = 0.0;
        let mut admitted = 0.0;
        for &a in &amounts {
            let delay = bucket.admit(t_us, a);
            admitted += a;
            t_us += delay;
        }
        // Long-run throughput ≤ rate plus the initial burst allowance.
        let elapsed_secs = t_us / 1e6;
        prop_assert!(
            admitted <= rate * elapsed_secs + rate + 1e-6,
            "admitted {admitted} over {elapsed_secs}s at rate {rate}"
        );
    }

    #[test]
    fn zipf_weights_normalize_for_any_shape(
        n in 1usize..200,
        s in 0.0f64..4.0,
    ) {
        let w = ebs::workload::dist::zipf::zipf_weights(n, s);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-15);
        }
    }

    #[test]
    fn slab_lru_agrees_with_the_reference_implementation(
        capacity in 1usize..24,
        accesses in prop::collection::vec(0u64..48, 1..500),
    ) {
        use ebs::cache::RefLruCache;
        let mut slab = LruCache::new(capacity);
        let mut reference = RefLruCache::new(capacity);
        for (i, &page) in accesses.iter().enumerate() {
            let op = if page % 3 == 0 { Op::Write } else { Op::Read };
            let a = slab.access(page, op);
            let b = reference.access(page, op);
            prop_assert_eq!(a, b, "access {} (page {}) diverged", i, page);
            prop_assert_eq!(slab.len(), reference.len(), "len diverged at access {}", i);
        }
        // Same resident pages in the same eviction order.
        prop_assert_eq!(slab.residency(), reference.residency());
    }

    #[test]
    fn ring_fifo_agrees_with_the_reference_implementation(
        capacity in 1usize..24,
        accesses in prop::collection::vec(0u64..48, 1..500),
    ) {
        use ebs::cache::RefFifoCache;
        let mut ring = FifoCache::new(capacity);
        let mut reference = RefFifoCache::new(capacity);
        for (i, &page) in accesses.iter().enumerate() {
            let op = if page % 2 == 0 { Op::Write } else { Op::Read };
            let a = ring.access(page, op);
            let b = reference.access(page, op);
            prop_assert_eq!(a, b, "access {} (page {}) diverged", i, page);
            prop_assert_eq!(ring.len(), reference.len(), "len diverged at access {}", i);
        }
        // Same resident pages in the same admission order.
        prop_assert_eq!(ring.residency(), reference.residency());
    }

    #[test]
    fn fx_hash_is_stable_and_outputs_are_insertion_order_independent(
        keys in prop::collection::vec(0u64..100_000, 1..150),
    ) {
        use ebs::core::hash::{FxBuildHasher, FxHashMap};
        use std::hash::BuildHasher;
        let hash_of = |k: &u64| FxBuildHasher.hash_one(k);
        // No hidden per-instance or per-process state: rehashing agrees.
        for k in &keys {
            prop_assert_eq!(hash_of(k), hash_of(k));
        }
        // Populate two maps in opposite insertion orders; every
        // order-independent reduction the hot paths rely on must agree.
        let mut fwd: FxHashMap<u64, u64> = FxHashMap::default();
        let mut rev: FxHashMap<u64, u64> = FxHashMap::default();
        for &k in &keys {
            fwd.insert(k, k.wrapping_mul(3));
        }
        for &k in keys.iter().rev() {
            rev.insert(k, k.wrapping_mul(3));
        }
        prop_assert_eq!(fwd.len(), rev.len());
        let sorted = |m: &FxHashMap<u64, u64>| {
            let mut v: Vec<(u64, u64)> = m.iter().map(|(&k, &x)| (k, x)).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(sorted(&fwd), sorted(&rev));
        // Max over a total order (the hottest-block reduction shape).
        prop_assert_eq!(
            fwd.iter().max_by_key(|&(&k, &x)| (x, std::cmp::Reverse(k))).map(|(&k, _)| k),
            rev.iter().max_by_key(|&(&k, &x)| (x, std::cmp::Reverse(k))).map(|(&k, _)| k)
        );
    }

    #[test]
    fn wr_ratio_bounds_hold(w in 0.0f64..1e12, r in 0.0f64..1e12) {
        if let Some(x) = ebs::analysis::wr_ratio(w, r) {
            prop_assert!((-1.0..=1.0).contains(&x));
            if w > r {
                prop_assert!(x > 0.0);
            }
        }
    }
}

#[test]
fn balancer_conserves_segments_under_random_strategies() {
    use ebs::balance::bs_balancer::{run_balancer, BalancerConfig};
    use ebs::balance::importer::ImporterSelect;
    let ds = ebs::workload::generate(&ebs::workload::WorkloadConfig::quick(4242)).unwrap();
    for strategy in ImporterSelect::ALL {
        let cfg = BalancerConfig {
            strategy,
            ..BalancerConfig::default()
        };
        let run = run_balancer(&ds.fleet, &ds.storage, ebs::core::ids::DcId(0), &cfg);
        let counts = run.seg_map.load_counts(ds.fleet.block_servers.len());
        assert_eq!(
            counts.iter().sum::<usize>(),
            ds.fleet.segments.len(),
            "{strategy:?} lost or duplicated segments"
        );
    }
}
