//! Workspace-level property tests: invariants that must hold for *any*
//! input, not just the canonical scenarios.

use ebs::analysis::{ccr, normalized_cov, p2a, quantile};
use ebs::cache::policy::CachePolicy;
use ebs::cache::{FifoCache, FrozenCache, LruCache};
use ebs::core::io::Op;
use ebs::stack::TokenBucket;
use proptest::prelude::*;

proptest! {
    #[test]
    fn ccr_is_monotone_in_fraction(
        values in prop::collection::vec(0.0f64..1e9, 2..50),
        f1 in 0.01f64..0.5,
        f2 in 0.5f64..1.0,
    ) {
        prop_assume!(values.iter().sum::<f64>() > 0.0);
        let a = ccr(&values, f1).unwrap();
        let b = ccr(&values, f2).unwrap();
        prop_assert!(b >= a - 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
    }

    #[test]
    fn normalized_cov_stays_in_unit_interval(
        values in prop::collection::vec(0.0f64..1e9, 2..40),
    ) {
        if let Some(c) = normalized_cov(&values) {
            prop_assert!((0.0..=1.0).contains(&c), "CoV {c}");
        }
    }

    #[test]
    fn p2a_at_least_one(values in prop::collection::vec(0.0f64..1e6, 1..100)) {
        if let Some(p) = p2a(&values) {
            prop_assert!(p >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in prop::collection::vec(-1e6f64..1e6, 1..60),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&values, lo).unwrap();
        let b = quantile(&values, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
    }

    #[test]
    fn lru_capacity_and_residency_invariants(
        capacity in 1usize..32,
        accesses in prop::collection::vec(0u64..64, 1..400),
    ) {
        let mut lru = LruCache::new(capacity);
        for (i, &page) in accesses.iter().enumerate() {
            lru.access(page, Op::Read);
            prop_assert!(lru.len() <= capacity, "step {i}: over capacity");
            // A page accessed twice in a row always hits the second time.
            prop_assert!(lru.access(page, Op::Read), "immediate re-access must hit");
        }
    }

    #[test]
    fn fifo_never_exceeds_capacity_and_repeats_hit_within_capacity(
        capacity in 1usize..32,
        accesses in prop::collection::vec(0u64..16, 1..300),
    ) {
        let mut fifo = FifoCache::new(capacity);
        for &page in &accesses {
            fifo.access(page, Op::Write);
            prop_assert!(fifo.len() <= capacity);
        }
        // With 16 distinct pages and capacity >= 16, everything is resident.
        if capacity >= 16 {
            for &page in &accesses {
                prop_assert!(fifo.access(page, Op::Read));
            }
        }
    }

    #[test]
    fn frozen_cache_is_exactly_its_range(
        first in 0u64..1000,
        pages in 1u64..64,
        probes in prop::collection::vec(0u64..2000, 1..100),
    ) {
        let mut frozen = FrozenCache::new(first, pages);
        for &p in &probes {
            let expect = p >= first && p < first + pages;
            prop_assert_eq!(frozen.access(p, Op::Read), expect);
        }
        prop_assert_eq!(frozen.len(), pages as usize);
    }

    #[test]
    fn token_bucket_never_admits_above_rate(
        rate in 100.0f64..1e6,
        amounts in prop::collection::vec(1.0f64..1e5, 1..200),
    ) {
        let mut bucket = TokenBucket::new(rate, rate);
        let mut t_us = 0.0;
        let mut admitted = 0.0;
        for &a in &amounts {
            let delay = bucket.admit(t_us, a);
            admitted += a;
            t_us += delay;
        }
        // Long-run throughput ≤ rate plus the initial burst allowance.
        let elapsed_secs = t_us / 1e6;
        prop_assert!(
            admitted <= rate * elapsed_secs + rate + 1e-6,
            "admitted {admitted} over {elapsed_secs}s at rate {rate}"
        );
    }

    #[test]
    fn zipf_weights_normalize_for_any_shape(
        n in 1usize..200,
        s in 0.0f64..4.0,
    ) {
        let w = ebs::workload::dist::zipf::zipf_weights(n, s);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for pair in w.windows(2) {
            prop_assert!(pair[0] >= pair[1] - 1e-15);
        }
    }

    #[test]
    fn slab_lru_agrees_with_the_reference_implementation(
        capacity in 1usize..24,
        accesses in prop::collection::vec(0u64..48, 1..500),
    ) {
        use ebs::cache::RefLruCache;
        let mut slab = LruCache::new(capacity);
        let mut reference = RefLruCache::new(capacity);
        for (i, &page) in accesses.iter().enumerate() {
            let op = if page % 3 == 0 { Op::Write } else { Op::Read };
            let a = slab.access(page, op);
            let b = reference.access(page, op);
            prop_assert_eq!(a, b, "access {} (page {}) diverged", i, page);
            prop_assert_eq!(slab.len(), reference.len(), "len diverged at access {}", i);
        }
        // Same resident pages in the same eviction order.
        prop_assert_eq!(slab.residency(), reference.residency());
    }

    #[test]
    fn ring_fifo_agrees_with_the_reference_implementation(
        capacity in 1usize..24,
        accesses in prop::collection::vec(0u64..48, 1..500),
    ) {
        use ebs::cache::RefFifoCache;
        let mut ring = FifoCache::new(capacity);
        let mut reference = RefFifoCache::new(capacity);
        for (i, &page) in accesses.iter().enumerate() {
            let op = if page % 2 == 0 { Op::Write } else { Op::Read };
            let a = ring.access(page, op);
            let b = reference.access(page, op);
            prop_assert_eq!(a, b, "access {} (page {}) diverged", i, page);
            prop_assert_eq!(ring.len(), reference.len(), "len diverged at access {}", i);
        }
        // Same resident pages in the same admission order.
        prop_assert_eq!(ring.residency(), reference.residency());
    }

    #[test]
    fn fx_hash_is_stable_and_outputs_are_insertion_order_independent(
        keys in prop::collection::vec(0u64..100_000, 1..150),
    ) {
        use ebs::core::hash::{FxBuildHasher, FxHashMap};
        use std::hash::BuildHasher;
        let hash_of = |k: &u64| FxBuildHasher.hash_one(k);
        // No hidden per-instance or per-process state: rehashing agrees.
        for k in &keys {
            prop_assert_eq!(hash_of(k), hash_of(k));
        }
        // Populate two maps in opposite insertion orders; every
        // order-independent reduction the hot paths rely on must agree.
        let mut fwd: FxHashMap<u64, u64> = FxHashMap::default();
        let mut rev: FxHashMap<u64, u64> = FxHashMap::default();
        for &k in &keys {
            fwd.insert(k, k.wrapping_mul(3));
        }
        for &k in keys.iter().rev() {
            rev.insert(k, k.wrapping_mul(3));
        }
        prop_assert_eq!(fwd.len(), rev.len());
        let sorted = |m: &FxHashMap<u64, u64>| {
            let mut v: Vec<(u64, u64)> = m.iter().map(|(&k, &x)| (k, x)).collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(sorted(&fwd), sorted(&rev));
        // Max over a total order (the hottest-block reduction shape).
        prop_assert_eq!(
            fwd.iter().max_by_key(|&(&k, &x)| (x, std::cmp::Reverse(k))).map(|(&k, _)| k),
            rev.iter().max_by_key(|&(&k, &x)| (x, std::cmp::Reverse(k))).map(|(&k, _)| k)
        );
    }

    #[test]
    fn wr_ratio_bounds_hold(w in 0.0f64..1e12, r in 0.0f64..1e12) {
        if let Some(x) = ebs::analysis::wr_ratio(w, r) {
            prop_assert!((-1.0..=1.0).contains(&x));
            if w > r {
                prop_assert!(x > 0.0);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Store codec properties (DESIGN.md §14): the v2 column kernels must
// round-trip any column, price themselves exactly, and re-encode decoded
// data byte-identically (the canonicality contract).
// ---------------------------------------------------------------------------

/// Encode → decode → re-encode one tagged column, checking value equality,
/// both size oracles, and byte-identical re-encoding.
fn assert_column_roundtrip(vals: &[u64]) {
    use ebs::store::codec::{decode_column_into, encode_column, encoded_column_size};
    use ebs::store::{ByteReader, ByteWriter};
    let mut w = ByteWriter::new();
    let written = encode_column(&mut w, vals);
    let bytes = w.into_bytes();
    assert_eq!(written as usize, bytes.len());
    assert_eq!(
        encoded_column_size(vals),
        bytes.len(),
        "size oracle diverged"
    );
    let mut r = ByteReader::new(&bytes, "prop column");
    let mut out = Vec::new();
    let consumed = decode_column_into(&mut r, vals.len(), &mut out).expect("round-trip decode");
    assert_eq!(
        consumed as usize,
        bytes.len(),
        "decoder left trailing bytes"
    );
    assert_eq!(out, vals);
    let mut w2 = ByteWriter::new();
    encode_column(&mut w2, &out);
    assert_eq!(w2.into_bytes(), bytes, "re-encode not byte-identical");
}

/// Mask `raw` down to `width` significant bits (1..=64).
fn masked(raw: &[u64], width: u32) -> Vec<u64> {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    raw.iter().map(|&v| v & mask).collect()
}

proptest! {
    #[test]
    fn zigzag_is_a_bijection(u in any::<u64>()) {
        use ebs::store::codec::{unzigzag, zigzag};
        prop_assert_eq!(zigzag(unzigzag(u)), u);
        let v = u as i64;
        prop_assert_eq!(unzigzag(zigzag(v)), v);
    }

    #[test]
    fn group_varint_roundtrips_any_width_mix(
        raw in prop::collection::vec(any::<u64>(), 0..260),
        width in 1u32..65,
    ) {
        use ebs::store::codec::{decode_group_varint_into, encode_group_varint, group_varint_size};
        use ebs::store::{ByteReader, ByteWriter};
        let vals = masked(&raw, width);
        let mut w = ByteWriter::new();
        encode_group_varint(&mut w, &vals);
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len(), group_varint_size(&vals), "size oracle diverged");
        let mut r = ByteReader::new(&bytes, "gv prop");
        let mut out = Vec::new();
        decode_group_varint_into(&mut r, vals.len(), &mut out).expect("gv decode");
        prop_assert_eq!(out, vals);
    }

    #[test]
    fn frame_of_reference_roundtrips_any_width_mix(
        raw in prop::collection::vec(any::<u64>(), 0..260),
        width in 1u32..65,
    ) {
        use ebs::store::codec::{decode_for_into, encode_for, for_size};
        use ebs::store::{ByteReader, ByteWriter};
        let vals = masked(&raw, width);
        let mut w = ByteWriter::new();
        encode_for(&mut w, &vals);
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len(), for_size(&vals), "size oracle diverged");
        let mut r = ByteReader::new(&bytes, "for prop");
        let mut out = Vec::new();
        decode_for_into(&mut r, vals.len(), &mut out).expect("for decode");
        prop_assert_eq!(out, vals);
    }

    #[test]
    fn tagged_column_roundtrips_with_any_alignment(
        raw in prop::collection::vec(any::<u64>(), 0..260),
        width in 1u32..65,
        shift in 0u32..16,
    ) {
        // Shifting left after masking plants the alignment the encoder's
        // shift byte is meant to recover.
        let vals: Vec<u64> = masked(&raw, width)
            .iter()
            .map(|&v| v.wrapping_shl(shift))
            .collect();
        assert_column_roundtrip(&vals);
    }

    #[test]
    fn v2_event_batches_roundtrip_and_agree_with_v1(
        raw in prop::collection::vec(any::<u64>(), 0..300),
    ) {
        use ebs::core::ids::{QpId, VdId};
        use ebs::core::io::{IoEvent, Op};
        use ebs::store::columns::{encode_events_v1, encode_events_v2};
        use ebs::store::{decode_events, EventScratch};
        // Derive every field from one u64 so timestamps stay sorted while
        // offsets mix alignments (0/9/18/27-bit) across VDs.
        let mut t = 0u64;
        let events: Vec<IoEvent> = raw
            .iter()
            .map(|&bits| {
                t += bits & 0xFFFF;
                IoEvent {
                    t_us: t,
                    vd: VdId((bits >> 16) as u32 & 0x3F),
                    qp: QpId((bits >> 22) as u32 & 0xFF),
                    op: if (bits >> 30) & 1 == 1 { Op::Write } else { Op::Read },
                    size: ((bits >> 31) & 0xF_FFFF) as u32,
                    offset: (bits >> 40) << ((bits & 3) * 9),
                }
            })
            .collect();
        let mut scratch = EventScratch::new();
        let (v2, _) = encode_events_v2(&events, &mut scratch).expect("v2 encode");
        prop_assert_eq!(decode_events(2, &v2).expect("v2 decode"), events.clone());
        let v1 = encode_events_v1(&events).expect("v1 encode");
        prop_assert_eq!(decode_events(1, &v1).expect("v1 decode"), events);
    }
}

#[test]
fn adversarial_columns_roundtrip_exactly() {
    let mut columns: Vec<Vec<u64>> = vec![
        vec![],
        vec![0],
        vec![u64::MAX],
        vec![42; 513],
        (0..400).collect(),
        (0..400).rev().collect(),
        (0..300)
            .map(|i| if i % 2 == 0 { 0 } else { u64::MAX })
            .collect(),
        (0..130).map(|i| 1u64 << (i % 64)).collect(),
        vec![1u64 << 63; 129],
        (0..257).map(|i| (i as u64) << 20).collect(),
    ];
    // Lengths straddling the FOR miniblock and group-varint group sizes
    // catch tail-masking bugs the round-number cases miss.
    for n in [3usize, 4, 5, 127, 128, 129, 255, 256] {
        columns.push((0..n as u64).map(|i| i.wrapping_mul(0x9E37)).collect());
    }
    for vals in &columns {
        assert_column_roundtrip(vals);
    }
}

/// A hand-framed v1 container must decode to the same events a v2
/// save→load round-trip produces: readers of either version agree.
#[test]
fn v1_containers_load_identically_to_v2_roundtrip() {
    use ebs::store::format::kind;
    use ebs::store::{crc32, ByteWriter, ChunkReader, StoreWriter, MAGIC};
    let ds = ebs::workload::generate(&ebs::workload::WorkloadConfig::quick(904)).unwrap();

    // v1: the exact pre-v2 layout — CRC32-sealed frames, per-value payloads.
    let mut v1 = Vec::new();
    let frame = |bytes: &mut Vec<u8>, chunk_kind: u8, payload: &[u8]| {
        bytes.push(chunk_kind);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
    };
    v1.extend_from_slice(&MAGIC);
    v1.extend_from_slice(&1u32.to_le_bytes());
    let mut chunks = 0u64;
    for chunk in ds.events.chunks(4096) {
        let payload = ebs::store::columns::encode_events_v1(chunk).unwrap();
        frame(&mut v1, kind::EVENTS, &payload);
        chunks += 1;
    }
    let mut end = ByteWriter::new();
    end.put_varint(chunks);
    end.put_varint(ds.events.len() as u64);
    frame(&mut v1, kind::END, &end.into_bytes());

    // v2: the current writer.
    let mut w = StoreWriter::new(Vec::new()).unwrap();
    w.write_events_chunked(&ds.events, 4096).unwrap();
    let v2 = w.finish().unwrap();

    let read_all = |bytes: &[u8]| -> Vec<ebs::core::io::IoEvent> {
        let mut out = Vec::new();
        for batch in ChunkReader::new(bytes).unwrap().into_event_chunks() {
            out.extend(batch.unwrap());
        }
        out
    };
    let from_v1 = read_all(&v1);
    let from_v2 = read_all(&v2);
    assert_eq!(from_v1, ds.events, "v1 container diverged from the source");
    assert_eq!(from_v2, ds.events, "v2 round-trip diverged from the source");
}

#[test]
fn balancer_conserves_segments_under_random_strategies() {
    use ebs::balance::bs_balancer::{run_balancer, BalancerConfig};
    use ebs::balance::importer::ImporterSelect;
    let ds = ebs::workload::generate(&ebs::workload::WorkloadConfig::quick(4242)).unwrap();
    for strategy in ImporterSelect::ALL {
        let cfg = BalancerConfig {
            strategy,
            ..BalancerConfig::default()
        };
        let run = run_balancer(&ds.fleet, &ds.storage, ebs::core::ids::DcId(0), &cfg);
        let counts = run.seg_map.load_counts(ds.fleet.block_servers.len());
        assert_eq!(
            counts.iter().sum::<usize>(),
            ds.fleet.segments.len(),
            "{strategy:?} lost or duplicated segments"
        );
    }
}

/// `StreamSummary::merge` identity and order-invariance: merging an empty
/// summary changes nothing, and folding a stream through any shard split,
/// merged in any order, is bit-identical to folding it whole. (Every
/// accumulator is an integer-valued f64 far below 2^53, so the elementwise
/// adds are exact — the property DESIGN.md §15 rests on.)
mod stream_summary_merge {
    use ebs::core::ids::{QpId, VdId};
    use ebs::core::io::{IoEvent, Op};
    use ebs::core::time::TickSpec;
    use ebs::store::StreamSummary;
    use proptest::prelude::*;

    const VD_COUNT: usize = 6;

    fn ticks() -> TickSpec {
        TickSpec::new(15.0, 8)
    }

    fn event(t_us: u64, vd: u32, size: u32) -> IoEvent {
        IoEvent {
            t_us,
            vd: VdId(vd),
            qp: QpId(0),
            op: Op::Read,
            size,
            offset: 0,
        }
    }

    /// Compare two summaries through their full accessor surface
    /// (`StreamSummary` has no `PartialEq`).
    fn assert_summaries_equal(a: &StreamSummary, b: &StreamSummary, label: &str) {
        assert_eq!(a.events(), b.events(), "{label}: events");
        assert_eq!(a.bytes(), b.bytes(), "{label}: bytes");
        assert_eq!(a.vd_bytes(), b.vd_bytes(), "{label}: vd_bytes");
        assert_eq!(a.tick_bytes(), b.tick_bytes(), "{label}: tick_bytes");
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(a.size_quantile(q), b.size_quantile(q), "{label}: q{q}");
        }
        assert_eq!(a.ccr(0.1), b.ccr(0.1), "{label}: ccr");
        assert_eq!(a.p2a(), b.p2a(), "{label}: p2a");
    }

    proptest! {
        #[test]
        fn merge_with_empty_is_identity(
            raw in prop::collection::vec(
                (0u64..150_000_000u64, 0u32..VD_COUNT as u32, 1u32..2_000_000u32),
                0..200,
            ),
        ) {
            let events: Vec<IoEvent> =
                raw.iter().map(|&(t, vd, size)| event(t, vd, size)).collect();
            let mut folded = StreamSummary::new(VD_COUNT, ticks());
            folded.fold_chunk(&events).unwrap();
            let mut merged = StreamSummary::new(VD_COUNT, ticks());
            merged.fold_chunk(&events).unwrap();
            merged.merge(&StreamSummary::new(VD_COUNT, ticks())).unwrap();
            assert_summaries_equal(&merged, &folded, "a ⊕ empty");
            // empty ⊕ a == a as well (identity on both sides).
            let mut left = StreamSummary::new(VD_COUNT, ticks());
            left.merge(&folded).unwrap();
            assert_summaries_equal(&left, &folded, "empty ⊕ a");
        }

        #[test]
        fn merge_is_order_invariant_over_shard_splits(
            raw in prop::collection::vec(
                (0u64..150_000_000u64, 0u32..VD_COUNT as u32, 1u32..2_000_000u32, 0usize..3),
                1..300,
            ),
        ) {
            // Fold the whole stream into one summary…
            let events: Vec<IoEvent> =
                raw.iter().map(|&(t, vd, size, _)| event(t, vd, size)).collect();
            let mut whole = StreamSummary::new(VD_COUNT, ticks());
            whole.fold_chunk(&events).unwrap();
            // …and through a random 3-way shard split.
            let mut shards = [
                StreamSummary::new(VD_COUNT, ticks()),
                StreamSummary::new(VD_COUNT, ticks()),
                StreamSummary::new(VD_COUNT, ticks()),
            ];
            for &(t, vd, size, shard) in &raw {
                shards[shard].fold_chunk(&[event(t, vd, size)]).unwrap();
            }
            for order in [[0usize, 1, 2], [2, 0, 1], [1, 2, 0]] {
                let mut total = StreamSummary::new(VD_COUNT, ticks());
                for &i in &order {
                    total.merge(&shards[i]).unwrap();
                }
                assert_summaries_equal(&total, &whole, &format!("order {order:?}"));
            }
        }
    }
}
