//! Workspace integration test: the full generate → simulate → analyze
//! pipeline, asserting the fidelity targets of DESIGN.md §5 on one
//! medium-scale dataset.

use ebs::analysis::aggregate::{rollup_compute, rollup_storage, ComputeLevel, StorageLevel};
use ebs::analysis::{ccr, median, p2a};
use ebs::core::metric::Measure;
use ebs::stack::sim::{StackConfig, StackSim};
use ebs::workload::{calibration, generate, WorkloadConfig};

fn dataset() -> ebs::workload::Dataset {
    generate(&WorkloadConfig::medium(0xE2E)).expect("medium config validates")
}

#[test]
fn calibration_invariants_hold() {
    let ds = dataset();
    let problems = calibration::check_shape(&ds);
    assert!(problems.is_empty(), "shape violations: {problems:?}");
}

#[test]
fn vm_level_read_skew_beats_prior_work() {
    let ds = dataset();
    let reads = rollup_compute(
        &ds.fleet,
        &ds.compute,
        ComputeLevel::Vm,
        Measure::ReadBytes,
        |_| true,
    );
    let writes = rollup_compute(
        &ds.fleet,
        &ds.compute,
        ComputeLevel::Vm,
        Measure::WriteBytes,
        |_| true,
    );
    let r1 = ccr(&reads.totals(), 0.01).unwrap();
    let w1 = ccr(&writes.totals(), 0.01).unwrap();
    // Observation 1: far above Lee et al.'s 16.6 %.
    assert!(r1 > 0.2, "read 1%-CCR {r1:.3}");
    // Observation 2: reads skew harder than writes.
    assert!(r1 > w1, "read {r1:.3} vs write {w1:.3}");
}

#[test]
fn temporal_skew_read_dominates_and_segments_are_skewed() {
    let ds = dataset();
    let p2a_median = |measure| {
        let roll = rollup_compute(&ds.fleet, &ds.compute, ComputeLevel::Vm, measure, |_| true);
        let v: Vec<f64> = roll.series.iter().filter_map(|(_, s)| p2a(s)).collect();
        median(&v).unwrap()
    };
    let r = p2a_median(Measure::ReadBytes);
    let w = p2a_median(Measure::WriteBytes);
    assert!(r > 3.0 * w, "median VM P2A: read {r:.0} vs write {w:.0}");

    let segs = rollup_storage(
        &ds.fleet,
        &ds.storage,
        StorageLevel::Seg,
        Measure::TotalBytes,
        None,
        |_| true,
    );
    let s1 = ccr(&segs.totals(), 0.01).unwrap();
    assert!(s1 > 0.1, "segment 1%-CCR {s1:.3} — hotspots must exist");
}

#[test]
fn stack_simulation_is_lossless_and_consistent() {
    let ds = dataset();
    let mut sim = StackSim::new(
        &ds.fleet,
        StackConfig {
            apply_throttle: false,
            ..StackConfig::default()
        },
    );
    let out = sim.run(&ds.events).expect("sorted events");
    assert_eq!(
        out.traces.len(),
        ds.events.len(),
        "every IO becomes a trace"
    );
    // Byte totals in the trace match the event stream exactly.
    let ev_bytes: f64 = ds.events.iter().map(|e| e.size as f64).sum();
    let (tr, tw) = out.traces.rw_bytes();
    assert!((ev_bytes - (tr + tw)).abs() < 1e-3);
    // Every latency is positive and stage-ordered.
    for r in out.traces.records().iter().take(2000) {
        assert!(r.lat.total_us() > 0.0);
        assert!(r.lat.cn_cache_us() <= r.lat.bs_cache_us());
    }
}

#[test]
fn sampled_stream_matches_metric_population() {
    let ds = dataset();
    let t = ds.compute.total();
    let expected = (t.read.ops + t.write.ops) * ebs::core::units::TRACE_SAMPLE_RATE;
    let got = ds.trace_count() as f64;
    assert!(
        (got - expected).abs() / expected < 0.25,
        "sampled {got} vs expected {expected}"
    );
}
