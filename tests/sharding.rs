//! Sharded-store determinism: generating through per-shard ownership must
//! be indistinguishable from the in-memory generator — byte-identical
//! datasets at every shard count and every thread count, with
//! observability on or off — and the streaming replay must merge
//! per-shard partials into exactly the statistics a single pass over an
//! unsharded store produces. These are the contracts that make
//! `bin/all --trace <dir> --shards N` and the fleet-scale pipeline safe
//! substitutes for `generate()`.

use ebs::core::parallel::set_thread_override;
use ebs::workload::{generate, generate_sharded, replay_summary, Dataset, WorkloadConfig};
use std::sync::{Mutex, OnceLock};

/// Serializes the tests that flip process-wide overrides (threads, obs).
fn override_guard() -> &'static Mutex<()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD.get_or_init(|| Mutex::new(()))
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ebs-sharding-{tag}-{}", std::process::id()))
}

/// Datasets compared on every generated artifact: trace events plus both
/// metric-series domains (fleet topology is seed-determined before any
/// fan-out, so these are the parts sharding could plausibly perturb).
fn assert_same_dataset(a: &Dataset, b: &Dataset, what: &str) {
    assert_eq!(a.events, b.events, "{what}: trace events diverged");
    for (x, y) in a.compute.per_qp.iter().zip(b.compute.per_qp.iter()) {
        assert_eq!(x, y, "{what}: per-QP series diverged");
    }
    for (x, y) in a.storage.per_seg.iter().zip(b.storage.per_seg.iter()) {
        assert_eq!(x, y, "{what}: per-segment series diverged");
    }
}

/// The seeds the sharding contract is pinned for: the default workload
/// seed, the experiment harness seed, and an arbitrary third.
const SEEDS: [u64; 3] = [0xEB5_5EED, ebs::experiments::EXPERIMENT_SEED, 424_242];

/// The tentpole contract: for every seed, every shard count, and every
/// thread count, the sharded store reloads to the exact dataset the
/// in-memory generator produces.
#[test]
fn sharded_generation_is_shard_and_thread_count_invariant() {
    let _guard = override_guard().lock().unwrap();
    for seed in SEEDS {
        let cfg = WorkloadConfig::quick(seed);
        set_thread_override(Some(1));
        let baseline = generate(&cfg).unwrap();
        for shards in [1usize, 2, 8] {
            for threads in [1usize, 4] {
                set_thread_override(Some(threads));
                let dir = tmp_dir(&format!("gen-{seed:x}-{shards}-{threads}"));
                std::fs::remove_dir_all(&dir).ok();
                let manifest = generate_sharded(&cfg, &dir, shards, true).unwrap();
                assert_eq!(manifest.total_events(), baseline.events.len() as u64);
                let ds = Dataset::load_sharded(&dir).unwrap();
                assert_same_dataset(
                    &baseline,
                    &ds,
                    &format!("seed {seed:#x}, {shards} shard(s), {threads} thread(s)"),
                );
                std::fs::remove_dir_all(&dir).ok();
            }
        }
        set_thread_override(None);
    }
}

/// The streaming replay never materializes the trace, so its statistics
/// must be bit-equal (f64 bits, not approximately) across shard counts.
#[test]
fn streaming_replay_statistics_are_shard_count_invariant() {
    let _guard = override_guard().lock().unwrap();
    set_thread_override(None);
    for seed in SEEDS {
        let cfg = WorkloadConfig::quick(seed);
        let mut digests = Vec::new();
        for shards in [1usize, 2, 8] {
            let dir = tmp_dir(&format!("replay-{seed:x}-{shards}"));
            std::fs::remove_dir_all(&dir).ok();
            generate_sharded(&cfg, &dir, shards, false).unwrap();
            let (manifest, summary) = replay_summary(&dir).unwrap();
            digests.push((
                manifest.vd_count,
                summary.events(),
                summary.bytes(),
                summary.ccr(0.2).map(f64::to_bits),
                summary.p2a().map(f64::to_bits),
                summary.size_quantile(0.5).map(f64::to_bits),
                summary.vd_bytes().iter().fold(0u64, |acc, v| {
                    acc.wrapping_mul(31).wrapping_add(v.to_bits())
                }),
            ));
            std::fs::remove_dir_all(&dir).ok();
        }
        assert_eq!(digests[0], digests[1], "seed {seed:#x}: 1 vs 2 shards");
        assert_eq!(digests[0], digests[2], "seed {seed:#x}: 1 vs 8 shards");
    }
}

/// Downstream contract: the full experiment driver renders byte-identical
/// output from a sharded replay — at several thread counts, with
/// observability both off and on.
#[test]
fn driver_output_from_sharded_replay_matches_generation() {
    use ebs::experiments::{dataset, driver, Scale};
    let _guard = override_guard().lock().unwrap();
    set_thread_override(Some(1));
    ebs::obs::set_obs_override(Some(false));
    let baseline = driver::run_all(&dataset(Scale::Quick));

    let cfg = Scale::Quick.config(ebs::experiments::EXPERIMENT_SEED);
    let dir = tmp_dir("driver");
    std::fs::remove_dir_all(&dir).ok();
    generate_sharded(&cfg, &dir, 3, true).unwrap();

    for threads in [1usize, 2, 8] {
        set_thread_override(Some(threads));
        let ds = Dataset::load_sharded(&dir).unwrap();
        assert_eq!(
            baseline,
            driver::run_all(&ds),
            "sharded replay diverged at {threads} threads, obs off"
        );
        ebs::obs::set_obs_override(Some(true));
        ebs::obs::reset();
        assert_eq!(
            baseline,
            driver::run_all(&ds),
            "sharded replay diverged at {threads} threads, obs on"
        );
        ebs::obs::set_obs_override(Some(false));
    }

    std::fs::remove_dir_all(&dir).ok();
    set_thread_override(None);
    ebs::obs::set_obs_override(None);
}

/// The gold-master pin, through the sharded path: the full-scale dataset,
/// generated shard-by-shard and reloaded, must reproduce
/// `full_run_output.txt` byte for byte — the same file the in-memory
/// generator is pinned to in `tests/determinism.rs`. It is the test that
/// makes the sharded path a true substitute, but full-scale sharded
/// generation is far too slow unoptimized (~17 min debug vs ~3 min
/// release), so it is ignored by default and CI runs it in release:
/// `cargo test --release --test sharding -- --ignored`.
#[test]
#[ignore = "full scale: minutes even in release; CI runs it explicitly"]
fn full_scale_sharded_replay_matches_gold_master() {
    use ebs::experiments::{driver, Scale};
    let _guard = override_guard().lock().unwrap();
    let gold = std::fs::read_to_string("full_run_output.txt").expect("gold master present");
    let cfg = Scale::Full.config(ebs::experiments::EXPERIMENT_SEED);
    let dir = tmp_dir("gold");
    std::fs::remove_dir_all(&dir).ok();
    generate_sharded(&cfg, &dir, 4, true).unwrap();
    let ds = Dataset::load_sharded(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    ebs::obs::set_obs_override(Some(true));
    let out = format!("{}\n", driver::run_all(&ds).join("\n\n"));
    ebs::obs::set_obs_override(None);
    assert_eq!(
        gold, out,
        "sharded full-scale output moved off the gold master"
    );
}
