//! Smoke test: every experiment module runs end-to-end at quick scale and
//! renders non-trivial output mentioning its paper artifact.

use ebs::experiments::*;

#[test]
fn every_table_and_figure_renders() {
    let ds = dataset(Scale::Quick);

    let t2 = table2::render(&table2::run(&ds));
    assert!(t2.contains("Table 2") && t2.lines().count() > 5);

    let t3 = table3::render(&table3::run(&ds));
    assert!(t3.contains("Table 3") && t3.contains("1%-CCR"));

    let t4 = table4::render(&table4::run(&ds));
    assert!(t4.contains("Table 4") && t4.contains("BigData"));

    let f2 = fig2::render(&fig2::run(&ds));
    assert!(f2.contains("Figure 2(a)") && f2.contains("rebind"));

    let f3 = fig3::render(&fig3::run(&ds));
    assert!(f3.contains("Figure 3(b)") && f3.contains("lending"));

    let f4 = fig4::render(&fig4::run(&ds));
    assert!(f4.contains("Figure 4(c)") && f4.contains("ARIMA"));

    let f5 = fig5::render(&fig5::run(&ds));
    assert!(f5.contains("Figure 5(c)") && f5.contains("Write-then-Read"));

    let f6 = fig6::render(&fig6::run(&ds));
    assert!(f6.contains("Figure 6") && f6.contains("hot rate"));

    let sim = stack_traces(&ds);
    let f7 = fig7::render(&fig7::run(&ds, &sim));
    assert!(f7.contains("Figure 7(a)") && f7.contains("FrozenHot"));

    let ab = ablations::render(&ds);
    assert!(ab.contains("Ablation") && ab.contains("lending rate"));
}

#[test]
fn experiments_share_one_canonical_dataset() {
    let a = dataset(Scale::Quick);
    let b = dataset(Scale::Quick);
    assert_eq!(a.trace_count(), b.trace_count());
    assert_eq!(a.total_bytes(), b.total_bytes());
}
